"""Statement execution: expression evaluation and nested-loop joins.

WHERE uses simplified two-valued logic: any comparison involving NULL is
false (the QBISM workload never relies on three-valued subtleties).
Ungrouped aggregates (``count/sum/avg/min/max``) are supported because
multi-study statistical queries (§6.4) want them.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

from repro.db.catalog import Catalog
from repro.db.functions import ExecutionContext, FunctionRegistry
from repro.db.planner import Plan, plan_select
from repro.db.schema import Column, TableSchema
from repro.db.sql.ast import (
    Analyze,
    BinOp,
    ColumnRef,
    CreateIndex,
    CreateSpatialIndex,
    CreateTable,
    Delete,
    DropIndex,
    DropTable,
    Exists,
    Expr,
    FuncCall,
    InSubquery,
    Insert,
    Literal,
    Param,
    Select,
    SelectItem,
    Star,
    Statement,
    Subquery,
    UnaryOp,
    Update,
)
from repro.db.types import SqlType
from repro.errors import CatalogError, ExecutionError, SqlTypeError
from repro.obs import metrics, trace
from repro.regions.region import Region

__all__ = ["ResultSet", "Executor"]

_AGGREGATES = {"count", "sum", "avg", "min", "max"}


@dataclass
class ResultSet:
    """Rows and column names produced by a SELECT."""

    columns: list[str]
    rows: list[tuple]
    #: rows affected, for DML statements routed through the same type
    rowcount: int = 0

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def first(self) -> tuple | None:
        """The first row, or None when the result is empty."""
        return self.rows[0] if self.rows else None

    def scalar(self):
        """The single value of a single-row, single-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutionError(
                f"scalar() needs a 1x1 result, got {len(self.rows)} rows x "
                f"{len(self.columns)} columns"
            )
        return self.rows[0][0]

    def to_dicts(self) -> list[dict]:
        """Rows as column-name dictionaries."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name: str) -> list:
        """One column's values, by case-insensitive name."""
        try:
            idx = [c.lower() for c in self.columns].index(name.lower())
        except ValueError:
            raise ExecutionError(f"result has no column {name!r}") from None
        return [row[idx] for row in self.rows]


class _Env:
    """Run-time bindings: binding name -> (schema, row).

    ``call_cache`` memoizes function-call results within one row binding, so
    a UDF appearing in both the WHERE clause and the select list (e.g. the
    ``dataMean(extractVoxels(...))`` of a cohort query) runs once.  Binding
    any frame invalidates the cache — conservative but always correct.

    ``outer`` chains to the enclosing query block's environment: correlated
    subqueries resolve their own tables first, then fall back outward, the
    standard SQL scoping rule.
    """

    __slots__ = ("frames", "call_cache", "outer")

    def __init__(self, outer: "_Env | None" = None) -> None:
        self.frames: dict[str, tuple[TableSchema, list]] = {}
        self.call_cache: dict = {}
        self.outer = outer

    def bind(self, binding: str, schema: TableSchema, row: list) -> None:
        """(Re)bind one table row; invalidates the call cache."""
        self.frames[binding] = (schema, row)
        self.call_cache.clear()

    def lookup(self, ref: ColumnRef):
        """Resolve a column reference against the bound frames (then outward)."""
        if ref.qualifier is not None:
            for binding, (schema, row) in self.frames.items():
                if binding.lower() == ref.qualifier.lower():
                    return row[schema.position(ref.name)]
            if self.outer is not None:
                return self.outer.lookup(ref)
            raise CatalogError(f"unknown table or alias {ref.qualifier!r}")
        owners = [
            (schema, row)
            for schema, row in self.frames.values()
            if ref.name in schema
        ]
        if not owners:
            if self.outer is not None:
                return self.outer.lookup(ref)
            raise CatalogError(f"no bound table has a column {ref.name!r}")
        if len(owners) > 1:
            raise CatalogError(f"column {ref.name!r} is ambiguous")
        schema, row = owners[0]
        return row[schema.position(ref.name)]


class Executor:
    """Executes parsed statements against a catalog and function registry."""

    def __init__(self, catalog: Catalog, functions: FunctionRegistry):
        self.catalog = catalog
        self.functions = functions

    # -------------------------------------------------------------- #
    # dispatch
    # -------------------------------------------------------------- #

    def execute(self, stmt: Statement, params: list, ctx: ExecutionContext) -> ResultSet:
        """Dispatch one parsed statement to its handler.

        Statements must pass semantic analysis before they run; when the
        caller has not already analyzed (``ctx.analyzed``), the analyzer
        runs here so direct ``Executor`` users get the same guarantees as
        the :class:`~repro.db.database.Database` facade.
        """
        if not ctx.analyzed:
            from repro.db.semantic import check

            check(stmt, self.catalog, self.functions)
            ctx.analyzed = True
        metrics.counter("executor.statements").inc()
        with trace.span("executor.statement", statement=type(stmt).__name__):
            return self._dispatch(stmt, params, ctx)

    def _dispatch(self, stmt: Statement, params: list, ctx: ExecutionContext) -> ResultSet:
        if isinstance(stmt, Select):
            return self.execute_select(stmt, params, ctx)
        if isinstance(stmt, Insert):
            return self._execute_insert(stmt, params, ctx)
        if isinstance(stmt, CreateTable):
            return self._execute_create(stmt)
        if isinstance(stmt, DropTable):
            self.catalog.drop_table(stmt.table)
            return ResultSet([], [], rowcount=0)
        if isinstance(stmt, Delete):
            return self._execute_delete(stmt, params, ctx)
        if isinstance(stmt, Update):
            return self._execute_update(stmt, params, ctx)
        if isinstance(stmt, CreateIndex):
            table = self.catalog.table(stmt.table)
            holders = self._fresh_holders(table)
            self.catalog.create_index(stmt.name, stmt.table, stmt.column)
            # index DDL changes no rows: repair the stamps it broke
            self._restamp_holders(table, holders)
            return ResultSet([], [], rowcount=0)
        if isinstance(stmt, DropIndex):
            table_name = self.catalog.index_table(stmt.name)
            table = (
                self.catalog.table(table_name) if table_name is not None else None
            )
            holders = self._fresh_holders(table) if table is not None else None
            self.catalog.drop_index(stmt.name)
            if table is not None:
                self._restamp_holders(table, holders)
            return ResultSet([], [], rowcount=0)
        if isinstance(stmt, CreateSpatialIndex):
            return self._execute_create_spatial_index(stmt, ctx)
        if isinstance(stmt, Analyze):
            return self._execute_analyze(stmt, ctx)
        raise ExecutionError(f"unsupported statement {type(stmt).__name__}")

    # -------------------------------------------------------------- #
    # statistics / spatial index maintenance
    # -------------------------------------------------------------- #

    def _fresh_holders(self, table):
        """Freshness of the table's stats and spatial indexes, pre-mutation."""
        return (
            table.stats.fresh(table),
            {col: idx.fresh(table) for col, idx in table.spatial.items()},
        )

    def _restamp_holders(self, table, holders) -> None:
        """Re-stamp holders that were fresh before a content-neutral DDL."""
        stats_fresh, index_fresh = holders
        if stats_fresh:
            table.stats.restamp(table)
        for col, idx in table.spatial.items():
            if index_fresh.get(col):
                idx.restamp(table)

    def _maintain_inserts(self, table, holders, inserted, ctx) -> None:
        """Fold inserted rows into every holder that was fresh beforehand."""
        stats_fresh, index_fresh = holders
        if stats_fresh:
            table.stats.apply_inserts(inserted, ctx.read_longfield)
            table.stats.restamp(table)
        for col, idx in table.spatial.items():
            if index_fresh.get(col):
                idx.apply_inserts(inserted, ctx.read_longfield)
                idx.restamp(table)

    def _resync_after_mutation(self, table, holders, ctx) -> None:
        """Resynchronize holders invalidated by a delete/update.

        Rewrites may store coerced values that differ from what the
        assignment expressions produced, so incremental accounting is not
        reliable there; a cached recompute (payloads already parsed) is.
        """
        stats_fresh, index_fresh = holders
        if stats_fresh and not table.stats.fresh(table):
            table.stats.recompute(table, ctx.read_longfield)
        for col, idx in table.spatial.items():
            if index_fresh.get(col) and not idx.fresh(table):
                idx.rebuild(table, ctx.read_longfield)

    def _execute_create_spatial_index(self, stmt: CreateSpatialIndex,
                                      ctx: ExecutionContext) -> ResultSet:
        table = self.catalog.table(stmt.table)
        stats_fresh = table.stats.fresh(table)
        index_fresh = {
            col: idx.fresh(table) for col, idx in table.spatial.items()
        }
        index = self.catalog.create_spatial_index(stmt.name, stmt.table, stmt.column)
        index.rebuild(table, ctx.read_longfield)
        # registration bumped the table's mutation stamp without changing
        # any rows; restamp the holders that were fresh before
        self._restamp_holders(table, (stats_fresh, index_fresh))
        return ResultSet([], [], rowcount=0)

    def _execute_analyze(self, stmt: Analyze, ctx: ExecutionContext) -> ResultSet:
        names = [stmt.table] if stmt.table is not None else self.catalog.table_names()
        analyzed = 0
        for name in names:
            table = self.catalog.table(name)
            # Bump the stamp first: rows are unchanged, but MVCC publish
            # re-clones only changed-stamp tables, and snapshots must see
            # the new statistics.  recompute/rebuild stamp to the bumped
            # value, so the holders come out fresh.
            table.mutations += 1
            table.stats.recompute(table, ctx.read_longfield, spatial=True)
            for index in table.spatial.values():
                index.rebuild(table, ctx.read_longfield)
            analyzed += table.row_count
        return ResultSet([], [], rowcount=analyzed)

    # -------------------------------------------------------------- #
    # DML / DDL
    # -------------------------------------------------------------- #

    def _execute_insert(self, stmt: Insert, params: list, ctx: ExecutionContext) -> ResultSet:
        table = self.catalog.table(stmt.table)
        holders = self._fresh_holders(table)
        before = table.row_count
        env = _Env()
        count = 0
        for value_row in stmt.rows:
            values = [self._eval(expr, env, params, ctx) for expr in value_row]
            if stmt.columns is None:
                table.insert(values)
            else:
                # value/column arity was proven to match by the analyzer (QB206)
                table.insert_named(**dict(zip(stmt.columns, values)))
            count += 1
        # maintain stats/indexes with the *stored* (coerced) rows
        inserted = list(itertools.islice(table.scan(), before, None))
        self._maintain_inserts(table, holders, inserted, ctx)
        return ResultSet([], [], rowcount=count)

    def _execute_create(self, stmt: CreateTable) -> ResultSet:
        columns = [Column(name, SqlType.from_name(type_name)) for name, type_name in stmt.columns]
        self.catalog.create_table(TableSchema(stmt.table, columns))
        return ResultSet([], [], rowcount=0)

    def _execute_delete(self, stmt: Delete, params: list, ctx: ExecutionContext) -> ResultSet:
        table = self.catalog.table(stmt.table)

        def matches(row: list) -> bool:
            if stmt.where is None:
                return True
            env = _Env()
            env.bind(table.name, table.schema, row)
            return bool(self._eval(stmt.where, env, params, ctx))

        holders = self._fresh_holders(table)
        deleted = table.delete_where(matches)
        self._resync_after_mutation(table, holders, ctx)
        return ResultSet([], [], rowcount=deleted)

    def _execute_update(self, stmt: Update, params: list, ctx: ExecutionContext) -> ResultSet:
        table = self.catalog.table(stmt.table)
        positions = [table.schema.position(col) for col, _ in stmt.assignments]

        def matches(row: list) -> bool:
            if stmt.where is None:
                return True
            env = _Env()
            env.bind(table.name, table.schema, row)
            return bool(self._eval(stmt.where, env, params, ctx))

        def apply(row: list) -> list:
            env = _Env()
            env.bind(table.name, table.schema, row)
            new_row = list(row)
            for position, (_, expr) in zip(positions, stmt.assignments):
                new_row[position] = self._eval(expr, env, params, ctx)
            return new_row

        holders = self._fresh_holders(table)
        updated = table.update_where(matches, apply)
        self._resync_after_mutation(table, holders, ctx)
        return ResultSet([], [], rowcount=updated)

    # -------------------------------------------------------------- #
    # SELECT
    # -------------------------------------------------------------- #

    def execute_select(self, select: Select, params: list, ctx: ExecutionContext,
                       outer_env: _Env | None = None) -> ResultSet:
        """Run a SELECT: join, filter, group, project, order, limit.

        ``outer_env`` supplies the enclosing block's bindings when this
        SELECT executes as a correlated subquery.
        """
        # EXPLAIN ANALYZE profiles the outermost SELECT only: take the
        # profile off the context so subqueries run unprofiled.
        profile = ctx.profile
        if profile is not None:
            ctx.profile = None
        with trace.span("executor.select", tables=len(select.tables)):
            return self._execute_select(select, params, ctx, outer_env, profile)

    def _execute_select(self, select: Select, params: list, ctx: ExecutionContext,
                        outer_env: _Env | None, profile) -> ResultSet:
        outer_bindings = _visible_bindings(outer_env)
        mode = ctx.planner_mode or "cost"
        plan = plan_select(select, self.catalog, outer_bindings, mode=mode)
        if profile is not None:
            profile.attach(plan)
            stmt_start = time.perf_counter()
            stmt_pages = _lfm_pages(ctx)
        raw_rows = list(self._nested_loops(plan, params, ctx, outer_env, profile))
        if profile is not None:
            out_start = time.perf_counter()
            out_pages = _lfm_pages(ctx)
        if select.group_by or self._has_aggregate_items(select):
            columns, rows, groups = self._grouped(select, raw_rows, params, ctx)
            sort_units: list = groups
            sort_eval = lambda expr, unit: self._eval_grouped(  # noqa: E731
                expr, select, unit, params, ctx
            )
        else:
            # HAVING without grouping was rejected by the analyzer (QB111)
            columns = self._output_columns(select, plan)
            rows = [
                tuple(self._project(select, plan, env, params, ctx))
                for env in raw_rows
            ]
            sort_units = raw_rows
            sort_eval = lambda expr, env: self._eval(expr, env, params, ctx)  # noqa: E731
        if select.order_by and len(rows) == len(sort_units):
            # ORDER BY may reference a select-list alias (standard SQL); such
            # items sort on the already projected value.
            alias_index = {}
            for i, name in enumerate(columns):
                alias_index[name.lower()] = None if name.lower() in alias_index else i

            def sort_key(item, pair):
                row, unit = pair
                expr = item.expr
                if isinstance(expr, ColumnRef) and expr.qualifier is None:
                    idx = alias_index.get(expr.name.lower())
                    if idx is not None:
                        return row[idx]
                return sort_eval(expr, unit)

            order_pairs = list(zip(rows, sort_units))
            # Python's sort is stable; apply keys right-to-left for mixed asc/desc.
            for item in reversed(select.order_by):
                order_pairs.sort(
                    key=lambda pair, it=item: sort_key(it, pair),
                    reverse=not item.ascending,
                )
            rows = [row for row, _ in order_pairs]
        if select.distinct:
            seen = set()
            unique = []
            for row in rows:
                key = tuple(_hashable(v) for v in row)
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            rows = unique
        if select.limit is not None:
            rows = rows[: select.limit]
        ctx.work.rows_output += len(rows)
        metrics.counter("executor.rows_emitted").inc(len(rows))
        if profile is not None:
            now = time.perf_counter()
            pages = _lfm_pages(ctx)
            profile.output.rows_in = len(raw_rows)
            profile.output.rows_out = len(rows)
            profile.output.wall_seconds = now - out_start
            profile.output.page_ios = pages - out_pages
            profile.rowcount = len(rows)
            profile.wall_seconds = now - stmt_start
            profile.page_ios = pages - stmt_pages
        return ResultSet(columns, rows)

    def _nested_loops(self, plan: Plan, params: list, ctx: ExecutionContext,
                      outer_env: _Env | None = None, profile=None):
        """Yield fully bound environments passing all predicates.

        Levels with an index probe read only the matching hash bucket;
        probing with NULL matches nothing (SQL equality semantics).

        With a ``profile`` (EXPLAIN ANALYZE), each level's
        :class:`~repro.obs.explain.OperatorStats` accumulates the rows it
        examined and matched plus the time and page I/Os of its own
        scan-bind-filter work (child levels account for themselves).
        """
        tables = [self.catalog.table(ref.name) for ref in plan.table_order]

        def rows_for(level: int, env: _Env):
            probe = plan.index_probes[level] if level < len(plan.index_probes) else None
            if probe is not None:
                column, value_expr = probe
                value = self._eval(value_expr, env, params, ctx)
                if value is None:
                    return ()
                return tables[level].probe(column, value)
            spatial = (
                plan.spatial_probes[level]
                if level < len(plan.spatial_probes) else None
            )
            if spatial is not None:
                candidates = self._spatial_candidates(
                    tables[level], spatial, env, params, ctx
                )
                if candidates is not None:
                    return candidates
            return tables[level].scan()

        def recurse(level: int, env: _Env):
            if level == len(tables):
                yield _snapshot(env)
                return
            ref = plan.table_order[level]
            table = tables[level]
            predicates = plan.level_predicates[level]
            stats = profile.levels[level] if profile is not None else None
            for row in rows_for(level, env):
                ctx.work.rows_scanned += 1
                if stats is None:
                    env.bind(ref.binding, table.schema, row)
                    if all(bool(self._eval(p, env, params, ctx)) for p in predicates):
                        yield from recurse(level + 1, env)
                    continue
                start = time.perf_counter()
                pages = _lfm_pages(ctx)
                env.bind(ref.binding, table.schema, row)
                matched = all(
                    bool(self._eval(p, env, params, ctx)) for p in predicates
                )
                stats.rows_in += 1
                stats.wall_seconds += time.perf_counter() - start
                stats.page_ios += _lfm_pages(ctx) - pages
                if matched:
                    stats.rows_out += 1
                    yield from recurse(level + 1, env)
            env.frames.pop(ref.binding, None)

        yield from recurse(0, _Env(outer=outer_env))

    def _spatial_candidates(self, table, spatial, env, params, ctx):
        """Rows an R-tree probe narrows a level to, or None for a scan.

        Returns None whenever the probe value is irregular (NULL handle,
        unparseable payload) so the plain scan evaluates the exact
        predicate against every row and the statement filters — or
        raises — exactly as the unoptimized plan would.
        """
        column, probe_expr = spatial
        index = table.spatial_index_on(column)
        if index is None:
            return None
        value = self._eval(probe_expr, env, params, ctx)
        if value is None:
            return None
        try:
            region = Region.from_bytes(ctx.read_longfield(value))
        except Exception:  # qblint: disable=no-broad-except
            return None  # any read/decode failure: defer to the plain scan
        if not region.voxel_count:
            # empty probe region: intersection() is empty for every row,
            # so the exact predicate rejects everything — skip the level
            return ()
        lower, upper = region.bounding_box()
        return index.probe(lower, upper)

    def _output_columns(self, select: Select, plan: Plan) -> list[str]:
        columns: list[str] = []
        for item in select.items:
            if isinstance(item.expr, Star):
                for ref in plan.table_order:
                    schema = self.catalog.table(ref.name).schema
                    columns.extend(schema.column_names())
            else:
                columns.append(item.alias or _derive_name(item))
        return columns

    def _project(self, select: Select, plan: Plan, env: _Env, params: list, ctx: ExecutionContext):
        for item in select.items:
            if isinstance(item.expr, Star):
                for ref in plan.table_order:
                    _, row = env.frames[ref.binding]
                    yield from row
            else:
                yield self._eval(item.expr, env, params, ctx)

    # -------------------------------------------------------------- #
    # aggregates
    # -------------------------------------------------------------- #

    def _has_aggregate_items(self, select: Select) -> bool:
        return any(_contains_aggregate(item.expr) for item in select.items)

    def _grouped(self, select: Select, envs: list[_Env], params: list,
                 ctx: ExecutionContext) -> tuple[list[str], list[tuple], list[list[_Env]]]:
        """GROUP BY execution (an empty GROUP BY forms one global group)."""
        columns = [item.alias or _derive_name(item) for item in select.items]
        if select.group_by:
            grouped: dict[tuple, list[_Env]] = {}
            for env in envs:
                key = tuple(
                    _hashable(self._eval(g, env, params, ctx)) for g in select.group_by
                )
                grouped.setdefault(key, []).append(env)
            groups = list(grouped.values())
        else:
            groups = [envs]  # a single (possibly empty) global group
        if select.having is not None:
            groups = [
                g for g in groups
                if bool(self._eval_grouped(select.having, select, g, params, ctx))
            ]
        rows = [
            tuple(
                self._eval_grouped(item.expr, select, group, params, ctx)
                for item in select.items
            )
            for group in groups
        ]
        return columns, rows, groups

    def _eval_grouped(self, expr: Expr, select: Select, group: list[_Env],
                      params: list, ctx: ExecutionContext):
        """Evaluate an expression in a per-group context.

        Aggregate calls fold over the group's rows; grouping expressions
        evaluate on any row of the group (they are constant within it);
        other column references are rejected, as SQL requires.
        """
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, Param):
            return self._eval(expr, _Env(), params, ctx)
        if isinstance(expr, FuncCall) and expr.name.lower() in _AGGREGATES:
            return self._fold_aggregate(expr, group, params, ctx)
        for group_expr in select.group_by:
            if expr == group_expr:
                if not group:
                    return None
                return self._eval(expr, group[0], params, ctx)
        if isinstance(expr, ColumnRef):
            raise ExecutionError(
                f"column {expr} must appear in GROUP BY or inside an aggregate"
            )
        if isinstance(expr, UnaryOp):
            value = self._eval_grouped(expr.operand, select, group, params, ctx)
            if expr.op == "-":
                return None if value is None else -value
            return None if value is None else not bool(value)
        if isinstance(expr, BinOp):
            # Rebuild the operator over grouped operand values via literals.
            left = self._eval_grouped(expr.left, select, group, params, ctx)
            right = self._eval_grouped(expr.right, select, group, params, ctx)
            return self._eval_binop(
                BinOp(expr.op, Literal(left), Literal(right)), _Env(), params, ctx
            )
        if isinstance(expr, FuncCall):
            args = [
                self._eval_grouped(arg, select, group, params, ctx)
                for arg in expr.args
            ]
            if expr.name == "__is_null":
                return args[0] is None
            return self.functions.call(expr.name, args, ctx)
        if isinstance(expr, (Subquery, InSubquery, Exists)):
            # Nested blocks in HAVING / grouped select lists: evaluate with a
            # representative row of the group in scope (grouping columns are
            # constant within the group, so any row works for correlation).
            env = group[0] if group else _Env()
            return self._eval(expr, env, params, ctx)
        raise ExecutionError(f"cannot evaluate {type(expr).__name__} in GROUP BY context")

    def _fold_aggregate(self, call: FuncCall, group: list[_Env], params: list,
                        ctx: ExecutionContext):
        name = call.name.lower()
        if name == "count" and len(call.args) == 1 and isinstance(call.args[0], Star):
            return len(group)
        if len(call.args) != 1:
            raise ExecutionError(f"aggregate {name}() takes exactly one argument")
        if _contains_aggregate(call.args[0]):
            raise ExecutionError("aggregates cannot be nested")
        samples = [
            v
            for env in group
            if (v := self._eval(call.args[0], env, params, ctx)) is not None
        ]
        if name == "count":
            return len(samples)
        if not samples:
            return None
        if name == "sum":
            return sum(samples)
        if name == "avg":
            return sum(samples) / len(samples)
        if name == "min":
            return min(samples)
        return max(samples)

    # -------------------------------------------------------------- #
    # expression evaluation
    # -------------------------------------------------------------- #

    def _eval(self, expr: Expr, env: _Env, params: list, ctx: ExecutionContext):
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, Param):
            try:
                return params[expr.index]
            except IndexError:
                raise ExecutionError(
                    f"statement references parameter {expr.index + 1} but only "
                    f"{len(params)} were supplied"
                ) from None
        if isinstance(expr, ColumnRef):
            return env.lookup(expr)
        if isinstance(expr, UnaryOp):
            value = self._eval(expr.operand, env, params, ctx)
            if expr.op == "-":
                return None if value is None else -value
            if expr.op == "not":
                return None if value is None else not bool(value)
            raise ExecutionError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, BinOp):
            return self._eval_binop(expr, env, params, ctx)
        if isinstance(expr, FuncCall):
            if expr.name == "__is_null":
                return self._eval(expr.args[0], env, params, ctx) is None
            # aggregates outside grouped queries were rejected by the
            # analyzer (QB110); any FuncCall reaching here is a scalar call
            if expr in env.call_cache:
                return env.call_cache[expr]
            args = [self._eval(arg, env, params, ctx) for arg in expr.args]
            result = self.functions.call(expr.name, args, ctx)
            env.call_cache[expr] = result
            return result
        if isinstance(expr, Subquery):
            rows = self._subquery_rows(
                expr.select, env, params, ctx, what="scalar subquery"
            )
            if not rows:
                return None
            if len(rows) > 1:
                raise ExecutionError("scalar subquery returned more than one row")
            return rows[0][0]
        if isinstance(expr, InSubquery):
            value = self._eval(expr.value, env, params, ctx)
            if value is None:
                return False  # simplified two-valued logic
            rows = self._subquery_rows(expr.subquery, env, params, ctx, what="IN subquery")
            found = any(row[0] == value for row in rows)
            return (not found) if expr.negated else found
        if isinstance(expr, Exists):
            result = self._run_subquery(expr.subquery, env, params, ctx)
            return bool(result.rows) != expr.negated
        if isinstance(expr, Star):
            raise ExecutionError("'*' is only allowed in a select list or count(*)")
        raise ExecutionError(f"cannot evaluate {type(expr).__name__}")

    def _subquery_rows(self, select: Select, env: _Env, params: list,
                       ctx: ExecutionContext, what: str) -> list[tuple]:
        result = self._run_subquery(select, env, params, ctx)
        if len(result.columns) != 1:
            raise ExecutionError(f"{what} must produce exactly one column")
        return result.rows

    def _run_subquery(self, select: Select, env: _Env, params: list,
                      ctx: ExecutionContext) -> ResultSet:
        """Run a nested query block, caching per statement when uncorrelated.

        A block that plans cleanly against its own FROM tables alone is
        uncorrelated: its result cannot depend on the outer row, so one
        execution serves every outer row.  Otherwise it re-runs per row
        with the outer environment in scope.
        """
        cached = ctx.subquery_cache.get(select)
        if cached is not None:
            return cached
        try:
            # naive mode: this is only a resolution probe, skip the DP
            plan_select(select, self.catalog, mode="naive")
            correlated = False
        except CatalogError:
            correlated = True
        if correlated:
            return self.execute_select(select, params, ctx, outer_env=env)
        result = self.execute_select(select, params, ctx)
        ctx.subquery_cache[select] = result
        return result

    def _eval_binop(self, expr: BinOp, env: _Env, params: list, ctx: ExecutionContext):
        op = expr.op
        if op == "and":
            left = self._eval(expr.left, env, params, ctx)
            if not left:
                return False
            return bool(self._eval(expr.right, env, params, ctx))
        if op == "or":
            left = self._eval(expr.left, env, params, ctx)
            if left:
                return True
            return bool(self._eval(expr.right, env, params, ctx))
        left = self._eval(expr.left, env, params, ctx)
        right = self._eval(expr.right, env, params, ctx)
        if op == "||":
            if left is None or right is None:
                return None
            return str(left) + str(right)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            if left is None or right is None:
                return False  # simplified two-valued logic
            try:
                if op == "=":
                    return left == right
                if op == "<>":
                    return left != right
                if op == "<":
                    return left < right
                if op == "<=":
                    return left <= right
                if op == ">":
                    return left > right
                return left >= right
            except TypeError:
                raise SqlTypeError(
                    f"cannot compare {type(left).__name__} with {type(right).__name__}"
                ) from None
        if left is None or right is None:
            return None
        try:
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                if right == 0:
                    raise ExecutionError("division by zero")
                result = left / right
                if isinstance(left, int) and isinstance(right, int) and result == int(result):
                    return int(result)
                return result
        except TypeError:
            raise SqlTypeError(
                f"operator {op!r} not defined for "
                f"{type(left).__name__} and {type(right).__name__}"
            ) from None
        raise ExecutionError(f"unknown operator {op!r}")


def _lfm_pages(ctx: ExecutionContext) -> int:
    """LFM pages this *statement* touched so far (0 when no LFM attached).

    Prefers the statement's thread-local I/O collector: under concurrent
    sessions the global counters move for everyone, and reading them here
    would attribute other statements' pages to this plan's operators.
    """
    if ctx.io_sink is not None:
        return ctx.io_sink.total_pages
    return ctx.lfm.stats.total_pages if ctx.lfm is not None else 0


def _contains_aggregate(expr: Expr) -> bool:
    if isinstance(expr, FuncCall):
        if expr.name.lower() in _AGGREGATES:
            return True
        return any(_contains_aggregate(arg) for arg in expr.args)
    if isinstance(expr, BinOp):
        return _contains_aggregate(expr.left) or _contains_aggregate(expr.right)
    if isinstance(expr, UnaryOp):
        return _contains_aggregate(expr.operand)
    return False


def _derive_name(item: SelectItem) -> str:
    expr = item.expr
    if isinstance(expr, ColumnRef):
        return expr.name
    if isinstance(expr, FuncCall):
        return expr.name
    return "expr"


def _snapshot(env: _Env) -> _Env:
    clone = _Env(outer=env.outer)
    clone.frames = dict(env.frames)
    clone.call_cache = dict(env.call_cache)
    return clone


def _visible_bindings(env: _Env | None) -> dict[str, TableSchema] | None:
    """Every binding visible through an environment chain, innermost first."""
    if env is None:
        return None
    visible: dict[str, TableSchema] = {}
    current: _Env | None = env
    while current is not None:
        for binding, (schema, _) in current.frames.items():
            visible.setdefault(binding, schema)
        current = current.outer
    return visible


def _hashable(value):
    try:
        hash(value)
        return value
    except TypeError:
        return id(value)
