"""MVCC snapshot versions of the catalog + LFM field table.

The writer-preferring ``RWLock`` makes one DML statement stall every
reader — the main throughput ceiling under mixed traffic.  This module
removes the stall with copy-on-write versioning: at each DML/DDL commit
(the same points where the result cache invalidates) the writer publishes
an immutable :class:`DatabaseVersion` — a snapshot of the catalog's
tables plus the long-field table.  A SELECT pins the latest published
version, runs entirely against it with **no read lock**, and unpins when
done.  Readers never block on writers and never observe a partial
transaction, because a version only ever exists for fully committed
state.

Cheap publishing rests on two stamp counters maintained by the live
structures: every :class:`~repro.db.table.Table` carries ``(uid,
mutations)`` and the :class:`~repro.db.catalog.Catalog` counts DDL in
``version``.  Publish clones only the tables whose stamp moved since the
previous version (copy-on-write at table granularity); pin compares the
same stamps to detect state mutated *outside* the publish protocol (a
loader poking tables directly) and reports "stale" so the caller can fall
back to the classic read-lock path instead of serving a torn snapshot.

Extents deleted by a transaction are not freed eagerly: a pinned reader
may still be streaming their bytes.  ``defer_free`` parks the free on the
version chain; when every version published up to and including the
delete has been released, the free runs — on the *writer* thread, at
publish time, so the buddy allocator is only ever touched under the
database write lock.

Lock class: the manager's mutex is ``db.version`` (rank 25) — acquired
under ``db.rwlock`` (10) and ``wal.txn`` (20) by writers, and bare by
readers pinning/unpinning.  It is never held while acquiring any other
tracked lock except leaf mutexes.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.concurrency import lockdep
from repro.errors import CatalogError
from repro.obs import metrics

__all__ = ["CatalogSnapshot", "DatabaseVersion", "RetireToken", "VersionManager"]


class CatalogSnapshot:
    """A frozen, read-only view over one version's tables.

    Mirrors the read surface of :class:`~repro.db.catalog.Catalog`
    (``table``, ``in``, ``table_names``, ``index_names``) so the semantic
    checker, planner, and executor run against it unchanged.  There are
    deliberately no ``create_*``/``drop_*`` methods: DDL on a snapshot is
    a programming error and fails fast with ``AttributeError``.
    """

    __slots__ = ("_tables", "_indexes")

    def __init__(self, tables: dict, indexes: dict):
        self._tables = tables      # lowercased name -> snapshot Table
        self._indexes = indexes    # index name -> (table, column)

    def table(self, name: str):
        """Look up a snapshot table by case-insensitive name."""
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no such table {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        """All table names in the snapshot, sorted."""
        return sorted(t.name for t in self._tables.values())

    def index_names(self) -> list[str]:
        """All index names in the snapshot, sorted."""
        return sorted(self._indexes)

    def __repr__(self) -> str:
        return f"CatalogSnapshot({', '.join(self.table_names()) or 'empty'})"


class RetireToken:
    """A cancellable deferred free parked on the version chain.

    ``run`` is invoked at most once, when the protecting versions are
    gone; ``cancel`` (from a transaction rollback) turns it into a no-op
    — the extent was never deallocated, so nothing needs re-carving.
    """

    __slots__ = ("_fn", "cancelled")

    def __init__(self, fn):
        self._fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        """Disarm the deferred free (transaction rolled back)."""
        self.cancelled = True

    def run(self) -> None:
        """Execute the free unless cancelled."""
        if not self.cancelled:
            self._fn()


class DatabaseVersion:
    """One immutable published version of the database's read state."""

    __slots__ = ("seq", "catalog", "fields", "stamps", "catalog_version",
                 "pins", "frees")

    def __init__(self, seq: int, catalog: CatalogSnapshot,
                 fields: dict | None, stamps: dict, catalog_version: int):
        self.seq = seq
        self.catalog = catalog
        #: frozen LFM field table (id -> (offset, length)), or None
        self.fields = fields
        #: lowercased table name -> (uid, mutations) at publish time
        self.stamps = stamps
        self.catalog_version = catalog_version
        self.pins = 0                   # guarded_by: db.version
        self.frees: list[RetireToken] = []  # guarded_by: db.version

    def __repr__(self) -> str:
        return f"DatabaseVersion(seq={self.seq}, pins={self.pins})"


class VersionManager:
    """Publishes, pins, and garbage-collects :class:`DatabaseVersion` s.

    The chain is ordered oldest→latest.  GC runs only inside ``publish``
    — i.e. on the writer thread, under the database write lock — popping
    fully released versions from the old end and running their deferred
    frees in order.  A version's frees protect data visible in versions
    up to and including itself, so popping strictly from the left is
    exactly the release order the frees require.
    """

    def __init__(self) -> None:
        self._lock = lockdep.instrument(threading.Lock(), "db.version")
        self._chain: deque[DatabaseVersion] = deque()
        self._pending: list[RetireToken] = []  # frees of the txn being built
        self._seq = 0

    # ------------------------------------------------------------------ #
    # writer side
    # ------------------------------------------------------------------ #

    def defer_free(self, fn) -> RetireToken:
        """Park ``fn`` (an allocator free) until superseded versions die.

        Called by the LFM from inside a write transaction.  The token is
        attached to the *currently latest* version at the next publish:
        that version is the newest one that can still see the deleted
        field.
        """
        token = RetireToken(fn)
        with self._lock:
            self._pending.append(token)
        return token

    def publish(self, catalog, lfm) -> DatabaseVersion:
        """Snapshot the live state as the next version; GC old versions.

        Must be called with the database write lock held: the live
        catalog and field table cannot move underneath the clone.  Only
        tables whose ``(uid, mutations)`` stamp changed since the
        previous version are cloned; unchanged snapshot tables are
        shared between versions.
        """
        with self._lock:
            prev = self._chain[-1] if self._chain else None
            tables: dict = {}
            stamps: dict = {}
            for key, live in catalog._tables.items():
                stamp = (live.uid, live.mutations)
                stamps[key] = stamp
                if prev is not None and prev.stamps.get(key) == stamp:
                    tables[key] = prev.catalog._tables[key]
                else:
                    tables[key] = live.snapshot()
            snapshot = CatalogSnapshot(tables, dict(catalog._indexes))
            fields = dict(lfm._fields) if lfm is not None else None
            self._seq += 1
            version = DatabaseVersion(
                self._seq, snapshot, fields, stamps, catalog.version
            )
            if prev is not None:
                prev.frees.extend(self._pending)
            else:
                # First publish: nothing older can be pinned, run eagerly.
                for token in self._pending:
                    token.run()
            self._pending.clear()
            self._chain.append(version)
            self._gc_locked()
            metrics.gauge("db.versions").set(len(self._chain))
        return version

    def discard_pending(self) -> None:
        """Drop deferred frees of a rolled-back transaction.

        The rollback path cancels its tokens individually (via the LFM
        undo actions); this merely clears the cancelled tokens out of the
        pending list so they never attach to a version.
        """
        with self._lock:
            self._pending = [t for t in self._pending if not t.cancelled]

    def _gc_locked(self) -> None:
        """Pop released versions from the old end, running their frees."""
        while len(self._chain) > 1 and self._chain[0].pins == 0:
            for token in self._chain.popleft().frees:
                token.run()

    # ------------------------------------------------------------------ #
    # reader side
    # ------------------------------------------------------------------ #

    def pin_latest(self) -> DatabaseVersion | None:
        """Pin and return the latest published version (None if none)."""
        with self._lock:
            if not self._chain:
                return None
            version = self._chain[-1]
            version.pins += 1
            return version

    def unpin(self, version: DatabaseVersion) -> None:
        """Release one pin.  Frees run later, at the next publish."""
        with self._lock:
            version.pins -= 1

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def latest_seq(self) -> int:
        """Sequence number of the most recently published version (0 if none)."""
        with self._lock:
            return self._seq

    @property
    def chain_length(self) -> int:
        """Number of live versions (latest plus still-pinned older ones)."""
        with self._lock:
            return len(self._chain)

    @property
    def pending_frees(self) -> int:
        """Deferred frees parked on live versions or the open transaction."""
        with self._lock:
            return len(self._pending) + sum(
                len(v.frees) for v in self._chain
            )

    def __repr__(self) -> str:
        return f"VersionManager(seq={self.latest_seq}, chain={self.chain_length})"
