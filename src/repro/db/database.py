"""The database facade: parse, plan, execute, account.

A :class:`Database` owns a catalog, a function registry, and (optionally) a
Long Field Manager.  ``execute()`` returns a :class:`QueryResult` carrying
the rows *and* the per-query deltas of the work counters and device I/O
statistics — the raw material for the paper's Tables 3 and 4.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.concurrency import RWLock
from repro.db.catalog import Catalog
from repro.db.executor import Executor, ResultSet
from repro.db.functions import (
    ExecutionContext,
    FunctionRegistry,
    FunctionSignature,
    WorkCounters,
    builtin_functions,
    builtin_signatures,
)
from repro.db.mvcc import DatabaseVersion, VersionManager
from repro.db.semantic import check
from repro.db.sql.parser import parse
from repro.errors import UnsupportedStatementError
from repro.obs import metrics, recorder, trace
from repro.obs.explain import PlanProfile, render_analyzed_plan
from repro.storage.device import IOStats, attribute_io
from repro.storage.lfm import FieldTableView, LongFieldManager

__all__ = ["Database", "QueryResult"]


@dataclass
class QueryResult:
    """Rows plus the resource accounting for one statement."""

    result: ResultSet
    work: WorkCounters
    io: IOStats | None
    sql: str

    # Convenience passthroughs so callers can treat this like a ResultSet.
    @property
    def rows(self) -> list[tuple]:
        """Result rows as tuples."""
        return self.result.rows

    @property
    def columns(self) -> list[str]:
        """Output column names."""
        return self.result.columns

    @property
    def rowcount(self) -> int:
        """Number of rows returned or affected."""
        return self.result.rowcount

    def __iter__(self):
        return iter(self.result.rows)

    def __len__(self) -> int:
        return len(self.result.rows)

    def first(self):
        """The first row, or ``None`` when the result is empty."""
        return self.result.first()

    def scalar(self):
        """The single value of a one-row, one-column result."""
        return self.result.scalar()

    def to_dicts(self) -> list[dict]:
        """Rows as a list of column-name -> value dicts."""
        return self.result.to_dicts()

    def column(self, name: str) -> list:
        """Every value of one named output column."""
        return self.result.column(name)


@dataclass
class Database:
    """An extensible relational database with LONGFIELD support.

    With ``mvcc`` enabled (the default), every committed write publishes
    an immutable snapshot version of the catalog and LFM field table
    (:mod:`repro.db.mvcc`); SELECT / EXPLAIN pin the latest version and
    run against it with **no read lock**, so readers never stall behind
    DML.  Disable it to get the classic reader-writer-lock protocol (the
    concurrency bench's baseline).
    """

    lfm: LongFieldManager | None = None
    catalog: Catalog = field(default_factory=Catalog)
    functions: FunctionRegistry = field(default_factory=FunctionRegistry)
    mvcc: bool = True
    #: default planner mode for every statement: "cost" (statistics-driven
    #: join ordering, predicate reordering, spatial probes), "greedy" (the
    #: legacy heuristic), or "naive" (FROM-order joins, conjuncts verbatim
    #: — the differential-testing baseline).  Overridable per statement
    #: via ``execute(..., planner=...)``.
    planner: str = "cost"

    def __post_init__(self) -> None:
        self.functions.register_all(builtin_functions(), builtin_signatures())
        self._executor = Executor(self.catalog, self.functions)
        self._rwlock = RWLock(name="db.rwlock")
        self._versions = VersionManager()
        self._txn_nesting = 0  # open transaction() scopes; guarded_by db.rwlock
        if self.mvcc:
            if self.lfm is not None:
                # Extent frees wait for pinned readers streaming their bytes.
                self.lfm.retire_extent = self._versions.defer_free
            self.publish_snapshot()

    @property
    def rwlock(self) -> RWLock:
        """The statement-level reader-writer lock (see ARCHITECTURE.md).

        With MVCC on, SELECT / EXPLAIN normally bypass this lock entirely
        (they run against a pinned snapshot); the shared side is only
        taken on the fallback path.  Every mutating statement (and
        :meth:`transaction`) takes the exclusive side.  The lock is
        re-entrant for its holder, so code running inside an exclusive
        transaction scope may keep issuing statements.
        """
        return self._rwlock

    @property
    def versions(self) -> VersionManager:
        """The MVCC version manager (snapshot chain introspection)."""
        return self._versions

    @property
    def version_seq(self) -> int:
        """Sequence number of the latest published snapshot (0 when none)."""
        return self._versions.latest_seq

    # ------------------------------------------------------------------ #
    # MVCC snapshot protocol
    # ------------------------------------------------------------------ #

    def pin_version(self) -> DatabaseVersion | None:
        """Pin the latest snapshot for a lock-free read.

        Returns ``None`` — caller falls back to the read-lock path — when
        MVCC is off, when no version is published yet, when the snapshot
        is stale (something mutated tables outside the publish protocol),
        or when this thread holds the write lock (statements inside an
        open transaction must see its uncommitted state, which only the
        live path can show).  A non-``None`` result must be released with
        :meth:`unpin_version`.
        """
        if not self.mvcc:
            return None
        if self._rwlock.write_held:
            return None
        version = self._versions.pin_latest()
        if version is None:
            return None
        if not self._version_fresh(version):
            self._versions.unpin(version)
            return None
        return version

    def unpin_version(self, version: DatabaseVersion) -> None:
        """Release a pin taken with :meth:`pin_version`."""
        self._versions.unpin(version)

    def _version_fresh(self, version: DatabaseVersion) -> bool:
        """Does the snapshot still match the live committed state?

        Compares the catalog's DDL counter and each snapshot table's
        ``(uid, mutations)`` stamp against the live table of the same
        name.  A loader that pokes tables directly (bypassing SQL and
        publish) moves the stamps, so its changes force readers back to
        the locked path instead of being invisibly absent — until it
        calls :meth:`publish_snapshot`.
        """
        if self.lfm is not None and version.fields is None:
            return False
        catalog = self.catalog
        if version.catalog_version != catalog.version:
            return False
        live_tables = catalog._tables
        for key, stamp in version.stamps.items():
            live = live_tables.get(key)
            if live is None or (live.uid, live.mutations) != stamp:
                return False
        return True

    def publish_snapshot(self) -> None:
        """Publish the live committed state as a fresh snapshot version.

        Runs automatically after every committed write statement and
        transaction.  Loaders that mutate tables directly (bypassing the
        SQL layer) should call it once when done, so readers return to
        the lock-free snapshot path.
        """
        if not self.mvcc:
            return
        with self._rwlock.write():
            self._publish_version()

    def _publish_version(self) -> None:
        """Publish under the already-held write lock.

        Callers hold the exclusive side of :attr:`rwlock` — sometimes via
        an explicit ``acquire_write`` whose release lives in a commit
        callback, which is why this contract is prose rather than a
        statically checked ``@guarded_by``; the runtime lockdep witness
        still sees every acquisition order.
        """
        self._versions.publish(self.catalog, self.lfm)

    @staticmethod
    def statement_is_read(stmt) -> bool:
        """Does this parsed statement only read (SELECT / EXPLAIN)?"""
        from repro.db.sql.ast import Explain, Select

        return isinstance(stmt, (Select, Explain))

    def execute(self, sql: str, params: list | None = None,
                functions: FunctionRegistry | None = None,
                version: DatabaseVersion | None = None,
                planner: str | None = None) -> QueryResult:
        """Parse, analyze, and run one SQL statement.

        The semantic analyzer runs unconditionally between parse and
        execution, so a malformed query fails with a ``QBxxx`` diagnostic
        before any Long Field Manager I/O is issued or any UDF is called.

        ``params`` binds ``?`` placeholders positionally; this is how
        Python-side values (LongField handles, large strings) enter
        statements without literal syntax.

        ``functions`` substitutes a different registry for this statement
        — the session layer passes a per-session registry that chains to
        the shared one, so session-local UDFs resolve without touching
        other sessions.

        SELECT / EXPLAIN run lock-free against a pinned MVCC snapshot
        when one is available; ``version`` lets a caller that already
        pinned one (the result cache tags entries with its sequence
        number) supply it — the caller then also owns the unpin.  When no
        snapshot applies, reads take the shared side of :attr:`rwlock`;
        mutating statements always take the exclusive side and publish a
        fresh snapshot on commit.

        ``planner`` overrides the database's default planner mode
        (:attr:`planner`) for this statement.
        """
        import time

        from repro.db.sql.ast import Explain

        stmt = parse(sql)
        registry = functions if functions is not None else self.functions
        mode = planner if planner is not None else self.planner
        is_read = self.statement_is_read(stmt)
        # The flight recorder's statement scope: when the serving layer
        # already opened one on this thread (it owns session/pool-wait
        # attribution), the notes below land on that record instead.
        rec = recorder.statement(sql, trace_id=trace.current_trace_id(),
                                 kind="read" if is_read else "write")
        if is_read:
            pinned = version if version is not None else self.pin_version()
            if pinned is not None:
                try:
                    with rec:
                        return self._execute_pinned(
                            stmt, list(params or ()), sql, registry, rec,
                            pinned, mode,
                        )
                finally:
                    if version is None:
                        self.unpin_version(pinned)
        lock = self._rwlock.read() if is_read else self._rwlock.write()
        with rec, lock:
            check(stmt, self.catalog, registry)
            if isinstance(stmt, Explain):
                result = self._execute_explain(stmt, list(params or ()), sql,
                                               registry, mode=mode)
                rec.note(rows=len(result.rows), io=result.io, kind="explain",
                         params=params if params else None)
                return result
            metrics.counter("db.statements").inc()
            start = time.perf_counter()
            ctx = ExecutionContext(lfm=self.lfm, analyzed=True,
                                   planner_mode=mode)
            # Thread-local attribution: the delta is exactly this
            # statement's I/O even while other sessions run concurrently
            # (a global before/after snapshot would absorb their pages).
            if self.lfm is not None:
                with attribute_io(self.lfm.stats) as io_delta:
                    ctx.io_sink = io_delta
                    result = self._run(stmt, list(params or ()), ctx, registry)
            else:
                io_delta = None
                result = self._run(stmt, list(params or ()), ctx, registry)
            wall = time.perf_counter() - start
            metrics.histogram("db.query_seconds").observe(wall)
            # SELECTs report returned rows; writes report rows affected.
            rec.note(rows=len(result.rows) or result.rowcount, io=io_delta,
                     params=params if params else None)
            if not is_read and self.mvcc and self._txn_nesting == 0:
                # Auto-commit write: the statement is fully applied (any
                # LFM mini-transactions have flushed), publish it.
                self._publish_version()
            return QueryResult(result=result, work=ctx.work, io=io_delta,
                               sql=sql)

    def _execute_pinned(self, stmt, params: list, sql: str,
                        registry: FunctionRegistry, rec,
                        pinned: DatabaseVersion,
                        mode: str | None = None) -> QueryResult:
        """Run SELECT / EXPLAIN against a pinned snapshot — no read lock.

        The statement sees the snapshot's catalog tables and a read-only
        view of its LFM field table; live-state mutations by concurrent
        writers are invisible.  I/O attribution is unchanged: the view
        delegates reads to the live LFM, whose stats feed the same
        thread-local sink.
        """
        import time

        from repro.db.sql.ast import Explain

        catalog = pinned.catalog
        check(stmt, catalog, registry)
        lfm_view = (FieldTableView(self.lfm, pinned.fields)
                    if self.lfm is not None else None)
        if isinstance(stmt, Explain):
            result = self._execute_explain(stmt, params, sql, registry,
                                           catalog=catalog, lfm=lfm_view,
                                           mode=mode)
            rec.note(rows=len(result.rows), io=result.io, kind="explain",
                     params=params if params else None)
            return result
        metrics.counter("db.statements").inc()
        start = time.perf_counter()
        ctx = ExecutionContext(lfm=lfm_view, analyzed=True, planner_mode=mode)
        if self.lfm is not None:
            with attribute_io(self.lfm.stats) as io_delta:
                ctx.io_sink = io_delta
                result = self._run(stmt, params, ctx, registry,
                                   catalog=catalog)
        else:
            io_delta = None
            result = self._run(stmt, params, ctx, registry, catalog=catalog)
        wall = time.perf_counter() - start
        metrics.histogram("db.query_seconds").observe(wall)
        rec.note(rows=len(result.rows) or result.rowcount, io=io_delta,
                 params=params if params else None)
        return QueryResult(result=result, work=ctx.work, io=io_delta,
                           sql=sql)

    def _run(self, stmt, params: list, ctx: ExecutionContext,
             registry: FunctionRegistry, catalog=None) -> ResultSet:
        """Dispatch to the shared executor (or a statement-scoped clone)."""
        if catalog is None:
            catalog = self.catalog
        if registry is self.functions and catalog is self.catalog:
            return self._executor.execute(stmt, params, ctx)
        return Executor(catalog, registry).execute(stmt, params, ctx)

    def _execute_explain(self, stmt, params: list, sql: str,
                         registry: FunctionRegistry | None = None, *,
                         catalog=None, lfm=None,
                         mode: str | None = None) -> QueryResult:
        """Run EXPLAIN / EXPLAIN ANALYZE; the plan comes back as rows.

        ``catalog`` / ``lfm`` pin the statement to a snapshot version;
        they default to the live structures (locked path).
        """
        from repro.db.planner import plan_select
        from repro.db.sql.ast import Select

        registry = registry if registry is not None else self.functions
        mode = mode if mode is not None else self.planner
        if catalog is None:
            catalog = self.catalog
            lfm = self.lfm
        inner = stmt.statement
        if not isinstance(inner, Select):
            raise UnsupportedStatementError("EXPLAIN supports SELECT statements only")
        if not stmt.analyze:
            lines = plan_select(inner, catalog, mode=mode).describe().splitlines()
            rows = [(line,) for line in lines]
            return QueryResult(
                result=ResultSet(["plan"], rows),
                work=WorkCounters(), io=None, sql=sql,
            )
        metrics.counter("db.statements").inc()
        profile = PlanProfile()
        ctx = ExecutionContext(lfm=lfm, analyzed=True, profile=profile,
                               planner_mode=mode)
        # Per-operator and statement totals read the thread-local sink, so
        # two EXPLAIN ANALYZEs in flight (the read lock is shared) cannot
        # cross-attribute each other's page I/Os.
        if lfm is not None:
            with attribute_io(lfm.stats) as io_delta:
                ctx.io_sink = io_delta
                self._run(inner, params, ctx, registry, catalog=catalog)
        else:
            io_delta = None
            self._run(inner, params, ctx, registry, catalog=catalog)
        lines = render_analyzed_plan(profile, io=io_delta, work=ctx.work)
        return QueryResult(
            result=ResultSet(["plan"], [(line,) for line in lines]),
            work=ctx.work, io=io_delta, sql=sql,
        )

    def executemany(self, sql: str, param_rows: list[list]) -> int:
        """Run one parameterized statement repeatedly; returns total rowcount."""
        stmt = parse(sql)
        is_read = self.statement_is_read(stmt)
        lock = self._rwlock.read() if is_read else self._rwlock.write()
        with lock:
            check(stmt, self.catalog, self.functions)
            total = 0
            for params in param_rows:
                ctx = ExecutionContext(lfm=self.lfm, analyzed=True,
                                       planner_mode=self.planner)
                total += self._executor.execute(stmt, list(params), ctx).rowcount
            if not is_read and self.mvcc and self._txn_nesting == 0:
                self._publish_version()
        return total

    def explain(self, sql: str) -> str:
        """The nested-loop plan the engine would run for a SELECT.

        The statement is analyzed first: EXPLAIN on a semantically invalid
        query reports the diagnostic rather than a plan.
        """
        from repro.db.planner import plan_select
        from repro.db.sql.ast import Explain, Select

        stmt = parse(sql)
        if isinstance(stmt, Explain):  # accept an explicit "EXPLAIN ..." too
            stmt = stmt.statement
        if not isinstance(stmt, Select):
            raise UnsupportedStatementError("EXPLAIN supports SELECT statements only")
        with self._rwlock.read():
            check(stmt, self.catalog, self.functions)
            return plan_select(stmt, self.catalog, mode=self.planner).describe()

    def analyze(self, sql: str) -> list:
        """Run only the static pass; returns the list of diagnostics."""
        from repro.db.semantic import analyze as _analyze

        with self._rwlock.read():
            return _analyze(parse(sql), self.catalog, self.functions)

    def transaction(self, on_publish=None):
        """Scope several statements into one storage transaction.

        Delegates to the device stack: under a write-ahead log every page
        dirtied inside the scope commits atomically with the LFM's field
        table; on a raw device the scope is a no-op.  Databases without an
        LFM have no storage to protect, so the scope is trivially empty.

        The scope holds the exclusive side of :attr:`rwlock` from entry
        through commit *seal*: concurrent readers never observe a
        half-applied transaction, and two writers' storage transactions
        cannot interleave.  Under a group-commit WAL the lock is released
        as soon as the commit is sealed and the snapshot published — the
        journal flush happens *outside* the lock, so other writers seal
        behind this one and share a single flush.  Statements issued
        inside the scope re-enter the lock without blocking.

        ``on_publish`` — a callable receiving the published snapshot's
        sequence number — fires immediately after each version this
        transaction publishes becomes visible: at commit seal (before the
        journal flush this committer then waits on), and again from the
        rollback re-publish when a group flush fails.  The serving layer
        hangs its result-cache invalidation here, so cached pre-write
        rows never coexist with fresh snapshot reads for the length of a
        flush, and a version rolled back by a flush failure is fenced
        even though the failure exception skips the caller's happy path.
        """
        return self._locked_transaction(on_publish)

    @contextmanager
    def _locked_transaction(self, on_publish=None):
        self._rwlock.acquire_write()
        self._txn_nesting += 1
        done = {"finished": False}

        def finish(publish: bool) -> None:
            # Exactly-once epilogue: runs either from the WAL's on-sealed
            # callback (early — before the journal flush, so the write
            # lock is free while this transaction waits on the "disk") or
            # from the scope exit below.
            if done["finished"]:
                return
            done["finished"] = True
            self._txn_nesting -= 1
            published = None
            if publish and self.mvcc and self._txn_nesting == 0:
                self._publish_version()
                published = self._versions.latest_seq
            elif not publish and self.mvcc:
                self._versions.discard_pending()
            self._rwlock.release_write()
            if published is not None and on_publish is not None:
                # After the lock release (a callback failure must not
                # leak the write lock) but still at publish time — well
                # before the journal flush the committer waits on.
                on_publish(published)

        try:
            if self.lfm is None:
                yield self
            else:
                kwargs = {}
                if (self.mvcc and self._txn_nesting == 1
                        and getattr(self.lfm.device, "supports_group_commit",
                                    False)):
                    kwargs["on_sealed"] = lambda: finish(publish=True)
                with self.lfm.device.transaction(
                    meta_provider=self.lfm.export_state, **kwargs
                ):
                    yield self
            finish(publish=True)
        # The scope boundary: rollback/unlock must run for KeyboardInterrupt
        # and SystemExit too, or the write lock leaks.
        except BaseException:  # qblint: disable=no-broad-except
            if not done["finished"]:
                finish(publish=False)
            else:
                # Sealed, published, and unlocked — but the flush failed
                # afterwards.  Publish again from the live state (the WAL
                # rolled it back, or — when the commit record was already
                # durable — kept it) so readers stop pinning a version
                # that no longer matches it, and fence the cache again.
                self.publish_snapshot()
                if on_publish is not None:
                    on_publish(self._versions.latest_seq)
            raise

    def register_function(self, name: str, fn,
                          signature: FunctionSignature | None = None,
                          replace: bool = False) -> None:
        """Register a user-defined SQL function (the Starburst extension hook).

        A declared ``signature`` lets the analyzer type-check calls; without
        one, only arity (derived from the callable) is enforced.
        """
        self.functions.register(name, fn, signature=signature, replace=replace)

    def table_names(self) -> list[str]:
        """All table names, sorted."""
        return self.catalog.table_names()

    def __repr__(self) -> str:
        return f"Database(tables={self.catalog.table_names()})"
