"""The database facade: parse, plan, execute, account.

A :class:`Database` owns a catalog, a function registry, and (optionally) a
Long Field Manager.  ``execute()`` returns a :class:`QueryResult` carrying
the rows *and* the per-query deltas of the work counters and device I/O
statistics — the raw material for the paper's Tables 3 and 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.catalog import Catalog
from repro.db.executor import Executor, ResultSet
from repro.db.functions import (
    ExecutionContext,
    FunctionRegistry,
    FunctionSignature,
    WorkCounters,
    builtin_functions,
    builtin_signatures,
)
from repro.db.semantic import check
from repro.db.sql.parser import parse
from repro.errors import UnsupportedStatementError
from repro.obs import metrics
from repro.obs.explain import PlanProfile, render_analyzed_plan
from repro.storage.device import IOStats
from repro.storage.lfm import LongFieldManager

__all__ = ["Database", "QueryResult"]


@dataclass
class QueryResult:
    """Rows plus the resource accounting for one statement."""

    result: ResultSet
    work: WorkCounters
    io: IOStats | None
    sql: str

    # Convenience passthroughs so callers can treat this like a ResultSet.
    @property
    def rows(self) -> list[tuple]:
        return self.result.rows

    @property
    def columns(self) -> list[str]:
        return self.result.columns

    @property
    def rowcount(self) -> int:
        return self.result.rowcount

    def __iter__(self):
        return iter(self.result.rows)

    def __len__(self) -> int:
        return len(self.result.rows)

    def first(self):
        return self.result.first()

    def scalar(self):
        return self.result.scalar()

    def to_dicts(self) -> list[dict]:
        return self.result.to_dicts()

    def column(self, name: str) -> list:
        return self.result.column(name)


@dataclass
class Database:
    """An extensible relational database with LONGFIELD support."""

    lfm: LongFieldManager | None = None
    catalog: Catalog = field(default_factory=Catalog)
    functions: FunctionRegistry = field(default_factory=FunctionRegistry)

    def __post_init__(self) -> None:
        self.functions.register_all(builtin_functions(), builtin_signatures())
        self._executor = Executor(self.catalog, self.functions)

    def execute(self, sql: str, params: list | None = None) -> QueryResult:
        """Parse, analyze, and run one SQL statement.

        The semantic analyzer runs unconditionally between parse and
        execution, so a malformed query fails with a ``QBxxx`` diagnostic
        before any Long Field Manager I/O is issued or any UDF is called.

        ``params`` binds ``?`` placeholders positionally; this is how
        Python-side values (LongField handles, large strings) enter
        statements without literal syntax.
        """
        import time

        from repro.db.sql.ast import Explain

        stmt = parse(sql)
        check(stmt, self.catalog, self.functions)
        if isinstance(stmt, Explain):
            return self._execute_explain(stmt, list(params or ()), sql)
        metrics.counter("db.statements").inc()
        start = time.perf_counter()
        ctx = ExecutionContext(lfm=self.lfm, analyzed=True)
        io_before = self.lfm.stats.copy() if self.lfm else None
        result = self._executor.execute(stmt, list(params or ()), ctx)
        io_delta = (self.lfm.stats - io_before) if self.lfm else None
        metrics.histogram("db.query_seconds").observe(time.perf_counter() - start)
        return QueryResult(result=result, work=ctx.work, io=io_delta, sql=sql)

    def _execute_explain(self, stmt, params: list, sql: str) -> QueryResult:
        """Run EXPLAIN / EXPLAIN ANALYZE; the plan comes back as rows."""
        from repro.db.planner import plan_select
        from repro.db.sql.ast import Select

        inner = stmt.statement
        if not isinstance(inner, Select):
            raise UnsupportedStatementError("EXPLAIN supports SELECT statements only")
        if not stmt.analyze:
            lines = plan_select(inner, self.catalog).describe().splitlines()
            rows = [(line,) for line in lines]
            return QueryResult(
                result=ResultSet(["plan"], rows),
                work=WorkCounters(), io=None, sql=sql,
            )
        metrics.counter("db.statements").inc()
        profile = PlanProfile()
        ctx = ExecutionContext(lfm=self.lfm, analyzed=True, profile=profile)
        io_before = self.lfm.stats.copy() if self.lfm else None
        self._executor.execute(inner, params, ctx)
        io_delta = (self.lfm.stats - io_before) if self.lfm else None
        lines = render_analyzed_plan(profile, io=io_delta, work=ctx.work)
        return QueryResult(
            result=ResultSet(["plan"], [(line,) for line in lines]),
            work=ctx.work, io=io_delta, sql=sql,
        )

    def executemany(self, sql: str, param_rows: list[list]) -> int:
        """Run one parameterized statement repeatedly; returns total rowcount."""
        stmt = parse(sql)
        check(stmt, self.catalog, self.functions)
        total = 0
        for params in param_rows:
            ctx = ExecutionContext(lfm=self.lfm, analyzed=True)
            total += self._executor.execute(stmt, list(params), ctx).rowcount
        return total

    def explain(self, sql: str) -> str:
        """The nested-loop plan the engine would run for a SELECT.

        The statement is analyzed first: EXPLAIN on a semantically invalid
        query reports the diagnostic rather than a plan.
        """
        from repro.db.planner import plan_select
        from repro.db.sql.ast import Explain, Select

        stmt = parse(sql)
        if isinstance(stmt, Explain):  # accept an explicit "EXPLAIN ..." too
            stmt = stmt.statement
        if not isinstance(stmt, Select):
            raise UnsupportedStatementError("EXPLAIN supports SELECT statements only")
        check(stmt, self.catalog, self.functions)
        return plan_select(stmt, self.catalog).describe()

    def analyze(self, sql: str) -> list:
        """Run only the static pass; returns the list of diagnostics."""
        from repro.db.semantic import analyze as _analyze

        return _analyze(parse(sql), self.catalog, self.functions)

    def transaction(self):
        """Scope several statements into one storage transaction.

        Delegates to the device stack: under a write-ahead log every page
        dirtied inside the scope commits atomically with the LFM's field
        table; on a raw device the scope is a no-op.  Databases without an
        LFM have no storage to protect, so the scope is trivially empty.
        """
        from contextlib import nullcontext

        if self.lfm is None:
            return nullcontext(self)
        return self.lfm.device.transaction(meta_provider=self.lfm.export_state)

    def register_function(self, name: str, fn,
                          signature: FunctionSignature | None = None,
                          replace: bool = False) -> None:
        """Register a user-defined SQL function (the Starburst extension hook).

        A declared ``signature`` lets the analyzer type-check calls; without
        one, only arity (derived from the callable) is enforced.
        """
        self.functions.register(name, fn, signature=signature, replace=replace)

    def table_names(self) -> list[str]:
        """All table names, sorted."""
        return self.catalog.table_names()

    def __repr__(self) -> str:
        return f"Database(tables={self.catalog.table_names()})"
