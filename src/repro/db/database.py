"""The database facade: parse, plan, execute, account.

A :class:`Database` owns a catalog, a function registry, and (optionally) a
Long Field Manager.  ``execute()`` returns a :class:`QueryResult` carrying
the rows *and* the per-query deltas of the work counters and device I/O
statistics — the raw material for the paper's Tables 3 and 4.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.concurrency import RWLock
from repro.db.catalog import Catalog
from repro.db.executor import Executor, ResultSet
from repro.db.functions import (
    ExecutionContext,
    FunctionRegistry,
    FunctionSignature,
    WorkCounters,
    builtin_functions,
    builtin_signatures,
)
from repro.db.semantic import check
from repro.db.sql.parser import parse
from repro.errors import UnsupportedStatementError
from repro.obs import metrics, recorder, trace
from repro.obs.explain import PlanProfile, render_analyzed_plan
from repro.storage.device import IOStats, attribute_io
from repro.storage.lfm import LongFieldManager

__all__ = ["Database", "QueryResult"]


@dataclass
class QueryResult:
    """Rows plus the resource accounting for one statement."""

    result: ResultSet
    work: WorkCounters
    io: IOStats | None
    sql: str

    # Convenience passthroughs so callers can treat this like a ResultSet.
    @property
    def rows(self) -> list[tuple]:
        """Result rows as tuples."""
        return self.result.rows

    @property
    def columns(self) -> list[str]:
        """Output column names."""
        return self.result.columns

    @property
    def rowcount(self) -> int:
        """Number of rows returned or affected."""
        return self.result.rowcount

    def __iter__(self):
        return iter(self.result.rows)

    def __len__(self) -> int:
        return len(self.result.rows)

    def first(self):
        """The first row, or ``None`` when the result is empty."""
        return self.result.first()

    def scalar(self):
        """The single value of a one-row, one-column result."""
        return self.result.scalar()

    def to_dicts(self) -> list[dict]:
        """Rows as a list of column-name -> value dicts."""
        return self.result.to_dicts()

    def column(self, name: str) -> list:
        """Every value of one named output column."""
        return self.result.column(name)


@dataclass
class Database:
    """An extensible relational database with LONGFIELD support."""

    lfm: LongFieldManager | None = None
    catalog: Catalog = field(default_factory=Catalog)
    functions: FunctionRegistry = field(default_factory=FunctionRegistry)

    def __post_init__(self) -> None:
        self.functions.register_all(builtin_functions(), builtin_signatures())
        self._executor = Executor(self.catalog, self.functions)
        self._rwlock = RWLock(name="db.rwlock")

    @property
    def rwlock(self) -> RWLock:
        """The statement-level reader-writer lock (see ARCHITECTURE.md).

        SELECT / EXPLAIN run under the shared side; every mutating
        statement (and :meth:`transaction`) takes the exclusive side.  The
        lock is re-entrant for its holder, so code running inside an
        exclusive transaction scope may keep issuing statements.
        """
        return self._rwlock

    @staticmethod
    def statement_is_read(stmt) -> bool:
        """Does this parsed statement only read (SELECT / EXPLAIN)?"""
        from repro.db.sql.ast import Explain, Select

        return isinstance(stmt, (Select, Explain))

    def execute(self, sql: str, params: list | None = None,
                functions: FunctionRegistry | None = None) -> QueryResult:
        """Parse, analyze, and run one SQL statement.

        The semantic analyzer runs unconditionally between parse and
        execution, so a malformed query fails with a ``QBxxx`` diagnostic
        before any Long Field Manager I/O is issued or any UDF is called.

        ``params`` binds ``?`` placeholders positionally; this is how
        Python-side values (LongField handles, large strings) enter
        statements without literal syntax.

        ``functions`` substitutes a different registry for this statement
        — the session layer passes a per-session registry that chains to
        the shared one, so session-local UDFs resolve without touching
        other sessions.

        Statements are classified read/write and run under the matching
        side of :attr:`rwlock`: concurrent SELECTs share the database,
        mutating statements get it exclusively.
        """
        import time

        from repro.db.sql.ast import Explain

        stmt = parse(sql)
        registry = functions if functions is not None else self.functions
        is_read = self.statement_is_read(stmt)
        lock = self._rwlock.read() if is_read else self._rwlock.write()
        # The flight recorder's statement scope: when the serving layer
        # already opened one on this thread (it owns session/pool-wait
        # attribution), the notes below land on that record instead.
        rec = recorder.statement(sql, trace_id=trace.current_trace_id(),
                                 kind="read" if is_read else "write")
        with rec, lock:
            check(stmt, self.catalog, registry)
            if isinstance(stmt, Explain):
                result = self._execute_explain(stmt, list(params or ()), sql,
                                               registry)
                rec.note(rows=len(result.rows), io=result.io, kind="explain",
                         params=params if params else None)
                return result
            metrics.counter("db.statements").inc()
            start = time.perf_counter()
            ctx = ExecutionContext(lfm=self.lfm, analyzed=True)
            # Thread-local attribution: the delta is exactly this
            # statement's I/O even while other sessions run concurrently
            # (a global before/after snapshot would absorb their pages).
            if self.lfm is not None:
                with attribute_io(self.lfm.stats) as io_delta:
                    ctx.io_sink = io_delta
                    result = self._run(stmt, list(params or ()), ctx, registry)
            else:
                io_delta = None
                result = self._run(stmt, list(params or ()), ctx, registry)
            wall = time.perf_counter() - start
            metrics.histogram("db.query_seconds").observe(wall)
            # SELECTs report returned rows; writes report rows affected.
            rec.note(rows=len(result.rows) or result.rowcount, io=io_delta,
                     params=params if params else None)
            return QueryResult(result=result, work=ctx.work, io=io_delta,
                               sql=sql)

    def _run(self, stmt, params: list, ctx: ExecutionContext,
             registry: FunctionRegistry) -> ResultSet:
        """Dispatch to the shared executor (or a session-scoped clone)."""
        if registry is self.functions:
            return self._executor.execute(stmt, params, ctx)
        return Executor(self.catalog, registry).execute(stmt, params, ctx)

    def _execute_explain(self, stmt, params: list, sql: str,
                         registry: FunctionRegistry | None = None) -> QueryResult:
        """Run EXPLAIN / EXPLAIN ANALYZE; the plan comes back as rows."""
        from repro.db.planner import plan_select
        from repro.db.sql.ast import Select

        registry = registry if registry is not None else self.functions
        inner = stmt.statement
        if not isinstance(inner, Select):
            raise UnsupportedStatementError("EXPLAIN supports SELECT statements only")
        if not stmt.analyze:
            lines = plan_select(inner, self.catalog).describe().splitlines()
            rows = [(line,) for line in lines]
            return QueryResult(
                result=ResultSet(["plan"], rows),
                work=WorkCounters(), io=None, sql=sql,
            )
        metrics.counter("db.statements").inc()
        profile = PlanProfile()
        ctx = ExecutionContext(lfm=self.lfm, analyzed=True, profile=profile)
        # Per-operator and statement totals read the thread-local sink, so
        # two EXPLAIN ANALYZEs in flight (the read lock is shared) cannot
        # cross-attribute each other's page I/Os.
        if self.lfm is not None:
            with attribute_io(self.lfm.stats) as io_delta:
                ctx.io_sink = io_delta
                self._run(inner, params, ctx, registry)
        else:
            io_delta = None
            self._run(inner, params, ctx, registry)
        lines = render_analyzed_plan(profile, io=io_delta, work=ctx.work)
        return QueryResult(
            result=ResultSet(["plan"], [(line,) for line in lines]),
            work=ctx.work, io=io_delta, sql=sql,
        )

    def executemany(self, sql: str, param_rows: list[list]) -> int:
        """Run one parameterized statement repeatedly; returns total rowcount."""
        stmt = parse(sql)
        lock = (self._rwlock.read() if self.statement_is_read(stmt)
                else self._rwlock.write())
        with lock:
            check(stmt, self.catalog, self.functions)
            total = 0
            for params in param_rows:
                ctx = ExecutionContext(lfm=self.lfm, analyzed=True)
                total += self._executor.execute(stmt, list(params), ctx).rowcount
        return total

    def explain(self, sql: str) -> str:
        """The nested-loop plan the engine would run for a SELECT.

        The statement is analyzed first: EXPLAIN on a semantically invalid
        query reports the diagnostic rather than a plan.
        """
        from repro.db.planner import plan_select
        from repro.db.sql.ast import Explain, Select

        stmt = parse(sql)
        if isinstance(stmt, Explain):  # accept an explicit "EXPLAIN ..." too
            stmt = stmt.statement
        if not isinstance(stmt, Select):
            raise UnsupportedStatementError("EXPLAIN supports SELECT statements only")
        with self._rwlock.read():
            check(stmt, self.catalog, self.functions)
            return plan_select(stmt, self.catalog).describe()

    def analyze(self, sql: str) -> list:
        """Run only the static pass; returns the list of diagnostics."""
        from repro.db.semantic import analyze as _analyze

        with self._rwlock.read():
            return _analyze(parse(sql), self.catalog, self.functions)

    def transaction(self):
        """Scope several statements into one storage transaction.

        Delegates to the device stack: under a write-ahead log every page
        dirtied inside the scope commits atomically with the LFM's field
        table; on a raw device the scope is a no-op.  Databases without an
        LFM have no storage to protect, so the scope is trivially empty.

        The scope holds the exclusive side of :attr:`rwlock` end to end:
        concurrent readers never observe a half-applied transaction, and
        two writers' storage transactions cannot interleave (the WAL
        additionally serializes commits below this layer).  Statements
        issued inside the scope re-enter the lock without blocking.
        """
        return self._locked_transaction()

    @contextmanager
    def _locked_transaction(self):
        with self._rwlock.write():
            if self.lfm is None:
                yield self
            else:
                with self.lfm.device.transaction(
                    meta_provider=self.lfm.export_state
                ):
                    yield self

    def register_function(self, name: str, fn,
                          signature: FunctionSignature | None = None,
                          replace: bool = False) -> None:
        """Register a user-defined SQL function (the Starburst extension hook).

        A declared ``signature`` lets the analyzer type-check calls; without
        one, only arity (derived from the callable) is enforced.
        """
        self.functions.register(name, fn, signature=signature, replace=replace)

    def table_names(self) -> list[str]:
        """All table names, sorted."""
        return self.catalog.table_names()

    def __repr__(self) -> str:
        return f"Database(tables={self.catalog.table_names()})"
