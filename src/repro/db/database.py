"""The database facade: parse, plan, execute, account.

A :class:`Database` owns a catalog, a function registry, and (optionally) a
Long Field Manager.  ``execute()`` returns a :class:`QueryResult` carrying
the rows *and* the per-query deltas of the work counters and device I/O
statistics — the raw material for the paper's Tables 3 and 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.catalog import Catalog
from repro.db.executor import Executor, ResultSet
from repro.db.functions import (
    ExecutionContext,
    FunctionRegistry,
    WorkCounters,
    builtin_functions,
)
from repro.db.sql.parser import parse
from repro.storage.device import IOStats
from repro.storage.lfm import LongFieldManager

__all__ = ["Database", "QueryResult"]


@dataclass
class QueryResult:
    """Rows plus the resource accounting for one statement."""

    result: ResultSet
    work: WorkCounters
    io: IOStats | None
    sql: str

    # Convenience passthroughs so callers can treat this like a ResultSet.
    @property
    def rows(self) -> list[tuple]:
        return self.result.rows

    @property
    def columns(self) -> list[str]:
        return self.result.columns

    @property
    def rowcount(self) -> int:
        return self.result.rowcount

    def __iter__(self):
        return iter(self.result.rows)

    def __len__(self) -> int:
        return len(self.result.rows)

    def first(self):
        return self.result.first()

    def scalar(self):
        return self.result.scalar()

    def to_dicts(self) -> list[dict]:
        return self.result.to_dicts()

    def column(self, name: str) -> list:
        return self.result.column(name)


@dataclass
class Database:
    """An extensible relational database with LONGFIELD support."""

    lfm: LongFieldManager | None = None
    catalog: Catalog = field(default_factory=Catalog)
    functions: FunctionRegistry = field(default_factory=FunctionRegistry)

    def __post_init__(self) -> None:
        self.functions.register_all(builtin_functions())
        self._executor = Executor(self.catalog, self.functions)

    def execute(self, sql: str, params: list | None = None) -> QueryResult:
        """Parse and run one SQL statement.

        ``params`` binds ``?`` placeholders positionally; this is how
        Python-side values (LongField handles, large strings) enter
        statements without literal syntax.
        """
        stmt = parse(sql)
        ctx = ExecutionContext(lfm=self.lfm)
        io_before = self.lfm.stats.copy() if self.lfm else None
        result = self._executor.execute(stmt, list(params or ()), ctx)
        io_delta = (self.lfm.stats - io_before) if self.lfm else None
        return QueryResult(result=result, work=ctx.work, io=io_delta, sql=sql)

    def executemany(self, sql: str, param_rows: list[list]) -> int:
        """Run one parameterized statement repeatedly; returns total rowcount."""
        stmt = parse(sql)
        total = 0
        for params in param_rows:
            ctx = ExecutionContext(lfm=self.lfm)
            total += self._executor.execute(stmt, list(params), ctx).rowcount
        return total

    def explain(self, sql: str) -> str:
        """The nested-loop plan the engine would run for a SELECT."""
        from repro.db.planner import plan_select
        from repro.db.sql.ast import Select

        stmt = parse(sql)
        if not isinstance(stmt, Select):
            raise ValueError("EXPLAIN supports SELECT statements only")
        return plan_select(stmt, self.catalog).describe()

    def register_function(self, name: str, fn) -> None:
        """Register a user-defined SQL function (the Starburst extension hook)."""
        self.functions.register(name, fn)

    def table_names(self) -> list[str]:
        """All table names, sorted."""
        return self.catalog.table_names()

    def __repr__(self) -> str:
        return f"Database(tables={self.catalog.table_names()})"
