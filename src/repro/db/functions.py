"""User-defined SQL functions — the Starburst extensibility hook (§5.1).

QBISM's spatial operators are ordinary SQL functions registered here; the
executor embeds them in query plans and invokes them at run time, exactly
as Starburst does.  Each function receives an :class:`ExecutionContext`
giving it access to the Long Field Manager (to dereference LONGFIELD
handles) and to the work counters the cost model uses to produce the
paper's CPU-time columns.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field

from repro.errors import CatalogError, ExecutionError
from repro.storage.lfm import LongField, LongFieldManager

__all__ = ["ExecutionContext", "FunctionRegistry", "WorkCounters"]


@dataclass
class WorkCounters:
    """Abstract work performed during a query, fed to the 1994 cost model."""

    rows_scanned: int = 0
    rows_output: int = 0
    udf_calls: int = 0
    runs_processed: int = 0  #: run-list elements merged/scanned by spatial ops
    voxels_extracted: int = 0  #: intensity values gathered from VOLUMEs
    longfield_bytes_read: int = 0

    def copy(self) -> "WorkCounters":
        """An independent snapshot, for before/after deltas."""
        return WorkCounters(**vars(self))

    def __sub__(self, other: "WorkCounters") -> "WorkCounters":
        return WorkCounters(**{k: v - getattr(other, k) for k, v in vars(self).items()})

    def __add__(self, other: "WorkCounters") -> "WorkCounters":
        return WorkCounters(**{k: v + getattr(other, k) for k, v in vars(self).items()})

    def reset(self) -> None:
        """Zero every counter."""
        for key in vars(self):
            setattr(self, key, 0)


@dataclass
class ExecutionContext:
    """Run-time environment handed to queries and UDFs."""

    lfm: LongFieldManager | None = None
    work: WorkCounters = field(default_factory=WorkCounters)
    #: memoized results of (uncorrelated) nested query blocks, per statement
    subquery_cache: dict = field(default_factory=dict)

    def read_longfield(self, value) -> bytes:
        """Dereference a LONGFIELD cell: handles are read via the LFM,
        transient byte payloads pass through unchanged."""
        if isinstance(value, bytes):
            return value
        if isinstance(value, LongField):
            if self.lfm is None:
                raise ExecutionError(
                    "query needs the Long Field Manager but none is attached"
                )
            data = self.lfm.read(value)
            self.work.longfield_bytes_read += len(data)
            return data
        raise ExecutionError(f"not a LONGFIELD value: {type(value).__name__}")


class FunctionRegistry:
    """Case-insensitive registry of SQL-callable functions.

    A registered callable may optionally declare a leading parameter named
    ``ctx`` to receive the :class:`ExecutionContext`; remaining parameters
    are the SQL arguments.
    """

    def __init__(self) -> None:
        self._functions: dict[str, tuple[callable, bool]] = {}

    def register(self, name: str, fn: callable) -> None:
        """Add one function under a case-insensitive name."""
        key = name.lower()
        if key in self._functions:
            raise CatalogError(f"function {name!r} already registered")
        wants_ctx = False
        params = list(inspect.signature(fn).parameters)
        if params and params[0] == "ctx":
            wants_ctx = True
        self._functions[key] = (fn, wants_ctx)

    def register_all(self, functions: dict[str, callable]) -> None:
        """Register several functions at once."""
        for name, fn in functions.items():
            self.register(name, fn)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._functions

    def call(self, name: str, args: list, ctx: ExecutionContext):
        """Invoke a registered function, wrapping unexpected failures."""
        try:
            fn, wants_ctx = self._functions[name.lower()]
        except KeyError:
            raise CatalogError(f"no such function {name!r}") from None
        ctx.work.udf_calls += 1
        try:
            if wants_ctx:
                return fn(ctx, *args)
            return fn(*args)
        except (CatalogError, ExecutionError):
            raise
        except Exception as exc:
            raise ExecutionError(f"function {name}() failed: {exc}") from exc

    def names(self) -> list[str]:
        """All registered function names, sorted."""
        return sorted(self._functions)


def builtin_functions() -> dict[str, callable]:
    """Small library of general-purpose scalar functions."""
    return {
        "abs": lambda x: abs(x) if x is not None else None,
        "lower": lambda s: s.lower() if s is not None else None,
        "upper": lambda s: s.upper() if s is not None else None,
        "length": lambda v: len(v) if v is not None else None,
        "coalesce": lambda *args: next((a for a in args if a is not None), None),
    }
