"""User-defined SQL functions — the Starburst extensibility hook (§5.1).

QBISM's spatial operators are ordinary SQL functions registered here; the
executor embeds them in query plans and invokes them at run time, exactly
as Starburst does.  Each function receives an :class:`ExecutionContext`
giving it access to the Long Field Manager (to dereference LONGFIELD
handles) and to the work counters the cost model uses to produce the
paper's CPU-time columns.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field

from repro.db.types import SqlType
from repro.errors import CatalogError, ExecutionError
from repro.storage.lfm import LongField, LongFieldManager

__all__ = [
    "ANY",
    "NUMBER",
    "ExecutionContext",
    "FunctionRegistry",
    "FunctionSignature",
    "WorkCounters",
    "builtin_functions",
    "builtin_signatures",
    "signature_from_callable",
]

#: argument type spec: any SQL type is acceptable
ANY = None
#: argument type spec: INTEGER or REAL
NUMBER = frozenset({SqlType.INTEGER, SqlType.REAL})


@dataclass(frozen=True)
class FunctionSignature:
    """Declared shape of a SQL-callable function, for static checking.

    ``param_types`` lists, per positional argument, the set of acceptable
    :class:`SqlType` values (``ANY`` = unconstrained).  ``max_args`` of
    ``None`` marks a variadic function.  ``returns`` of ``None`` means the
    result type is not statically known.  A signature derived from a bare
    Python callable (no declaration) constrains arity only.
    """

    name: str
    min_args: int
    max_args: int | None
    param_types: tuple[frozenset | None, ...] = ()
    returns: SqlType | None = None

    def arity_ok(self, count: int) -> bool:
        """Does a call with ``n`` arguments satisfy this signature?"""
        if count < self.min_args:
            return False
        return self.max_args is None or count <= self.max_args

    def arity_description(self) -> str:
        """Human-readable arity, for error messages."""
        if self.max_args is None:
            return f"at least {self.min_args}"
        if self.min_args == self.max_args:
            return str(self.min_args)
        return f"{self.min_args} to {self.max_args}"

    def param_spec(self, position: int) -> frozenset | None:
        """The acceptable types of one positional argument (ANY if unspecified)."""
        if position < len(self.param_types):
            return self.param_types[position]
        return ANY


def signature_from_callable(name: str, fn, wants_ctx: bool) -> FunctionSignature:
    """Derive an arity-only signature by inspecting a Python callable."""
    min_args = 0
    max_args: int | None = 0
    try:
        params = list(inspect.signature(fn).parameters.values())
    except (TypeError, ValueError):
        return FunctionSignature(name, 0, None)
    if wants_ctx:
        params = params[1:]
    for param in params:
        if param.kind in (param.VAR_POSITIONAL, param.VAR_KEYWORD):
            max_args = None
            continue
        if param.kind is param.KEYWORD_ONLY:
            continue
        if max_args is not None:
            max_args += 1
        if param.default is param.empty:
            min_args += 1
    return FunctionSignature(name, min_args, max_args)


@dataclass
class WorkCounters:
    """Abstract work performed during a query, fed to the 1994 cost model."""

    rows_scanned: int = 0
    rows_output: int = 0
    udf_calls: int = 0
    runs_processed: int = 0  #: run-list elements merged/scanned by spatial ops
    voxels_extracted: int = 0  #: intensity values gathered from VOLUMEs
    longfield_bytes_read: int = 0

    def copy(self) -> "WorkCounters":
        """An independent snapshot, for before/after deltas."""
        return WorkCounters(**vars(self))

    def __sub__(self, other: "WorkCounters") -> "WorkCounters":
        return WorkCounters(**{k: v - getattr(other, k) for k, v in vars(self).items()})

    def __add__(self, other: "WorkCounters") -> "WorkCounters":
        return WorkCounters(**{k: v + getattr(other, k) for k, v in vars(self).items()})

    def reset(self) -> None:
        """Zero every counter."""
        for key in vars(self):
            setattr(self, key, 0)


@dataclass
class ExecutionContext:
    """Run-time environment handed to queries and UDFs."""

    lfm: LongFieldManager | None = None
    work: WorkCounters = field(default_factory=WorkCounters)
    #: memoized results of (uncorrelated) nested query blocks, per statement
    subquery_cache: dict = field(default_factory=dict)
    #: True once the statement has passed semantic analysis; the executor
    #: runs the analyzer itself when handed an unanalyzed statement.
    analyzed: bool = False
    #: a :class:`~repro.obs.explain.PlanProfile` to fill for EXPLAIN
    #: ANALYZE; the executor claims it for the outermost SELECT only.
    profile: object | None = None
    #: the statement's thread-local I/O collector (an
    #: :class:`~repro.storage.device.IOStats` registered via
    #: ``attribute_io``); per-operator page attribution reads this instead
    #: of the process-global counters, so concurrent statements never
    #: steal each other's I/O.
    io_sink: object | None = None
    #: planner mode override for this statement ("cost", "greedy",
    #: "naive"); None means the engine default (cost-based)
    planner_mode: str | None = None

    def read_longfield(self, value) -> bytes:
        """Dereference a LONGFIELD cell: handles are read via the LFM,
        transient byte payloads pass through unchanged."""
        if isinstance(value, bytes):
            return value
        if isinstance(value, LongField):
            if self.lfm is None:
                raise ExecutionError(
                    "query needs the Long Field Manager but none is attached"
                )
            data = self.lfm.read(value)
            self.work.longfield_bytes_read += len(data)
            return data
        raise ExecutionError(f"not a LONGFIELD value: {type(value).__name__}")


class FunctionRegistry:
    """Case-insensitive registry of SQL-callable functions.

    A registered callable may optionally declare a leading parameter named
    ``ctx`` to receive the :class:`ExecutionContext`; remaining parameters
    are the SQL arguments.
    """

    def __init__(self) -> None:
        self._functions: dict[str, tuple[callable, bool]] = {}
        self._signatures: dict[str, FunctionSignature] = {}

    def register(self, name: str, fn: callable,
                 signature: FunctionSignature | None = None,
                 replace: bool = False) -> None:
        """Add one function under a case-insensitive name.

        Re-registering an existing name is rejected unless ``replace=True``
        (silently shadowing a spatial operator would invalidate every plan
        the analyzer has blessed against its declared signature).  Without a
        declared ``signature``, an arity-only one is derived by inspecting
        the callable so the analyzer can still reject wrong-arity calls.
        """
        key = name.lower()
        if key in self._functions and not replace:
            raise CatalogError(
                f"function {name!r} already registered (pass replace=True to override)"
            )
        wants_ctx = False
        try:
            params = list(inspect.signature(fn).parameters)
        except (TypeError, ValueError):
            params = []
        if params and params[0] == "ctx":
            wants_ctx = True
        if signature is None:
            signature = signature_from_callable(name, fn, wants_ctx)
        self._functions[key] = (fn, wants_ctx)
        self._signatures[key] = signature

    def register_all(self, functions: dict[str, callable],
                     signatures: dict[str, FunctionSignature] | None = None) -> None:
        """Register several functions at once (with optional signatures)."""
        signatures = signatures or {}
        for name, fn in functions.items():
            self.register(name, fn, signature=signatures.get(name))

    def signature(self, name: str) -> FunctionSignature | None:
        """The declared (or derived) signature of a function, if registered."""
        return self._signatures.get(name.lower())

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._functions

    def call(self, name: str, args: list, ctx: ExecutionContext):
        """Invoke a registered function, wrapping unexpected failures."""
        try:
            fn, wants_ctx = self._functions[name.lower()]
        except KeyError:
            raise CatalogError(f"no such function {name!r}") from None
        ctx.work.udf_calls += 1
        try:
            if wants_ctx:
                return fn(ctx, *args)
            return fn(*args)
        except (CatalogError, ExecutionError):
            raise
        # The UDF sandbox boundary: arbitrary user code fails in arbitrary
        # ways, and every failure must surface as one ExecutionError.
        except Exception as exc:  # qblint: disable=no-broad-except
            raise ExecutionError(f"function {name}() failed: {exc}") from exc

    def names(self) -> list[str]:
        """All registered function names, sorted."""
        return sorted(self._functions)


def builtin_functions() -> dict[str, callable]:
    """Small library of general-purpose scalar functions."""
    return {
        "abs": lambda x: abs(x) if x is not None else None,
        "lower": lambda s: s.lower() if s is not None else None,
        "upper": lambda s: s.upper() if s is not None else None,
        "length": lambda v: len(v) if v is not None else None,
        "coalesce": lambda *args: next((a for a in args if a is not None), None),
    }


def builtin_signatures() -> dict[str, FunctionSignature]:
    """Declared signatures of the builtin scalar functions."""
    text = frozenset({SqlType.TEXT})
    return {
        "abs": FunctionSignature("abs", 1, 1, (NUMBER,)),
        "lower": FunctionSignature("lower", 1, 1, (text,), SqlType.TEXT),
        "upper": FunctionSignature("upper", 1, 1, (text,), SqlType.TEXT),
        "length": FunctionSignature("length", 1, 1, (ANY,), SqlType.INTEGER),
        "coalesce": FunctionSignature("coalesce", 1, None),
    }
