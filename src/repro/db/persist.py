"""Database persistence: save a loaded database to disk and reopen it.

A saved database is a directory holding two files:

* ``device.img`` — the raw block-device contents (every long field);
* ``catalog.json`` — schemas, rows, registered long-field extents, and the
  device geometry.

LONGFIELD cells are stored as ``{"$lf": [id, length]}`` references into the
device image; transient byte payloads (rare in stored tables) round-trip as
base64.  ``load_database`` rebuilds the buddy allocator by carving the
recorded extents back out of the arena, so the reopened database can keep
allocating.

User-defined functions are code, not data: the caller re-registers them
(``register_spatial_functions``) after loading, exactly as Starburst
reloaded its extensions at startup.
"""

from __future__ import annotations

import base64
import json
import os
from pathlib import Path

from repro.db.database import Database
from repro.db.schema import Column, TableSchema
from repro.db.types import SqlType
from repro.errors import DatabaseError
from repro.storage.device import BlockDevice
from repro.storage.lfm import LongField, LongFieldManager
from repro.storage.wal import WriteAheadLog

__all__ = ["save_database", "load_database"]

_FORMAT_VERSION = 1
_JOURNAL_FILE = "wal.log"
DEFAULT_JOURNAL_CAPACITY = 4 << 20


def _find_wal(device) -> WriteAheadLog | None:
    """The WriteAheadLog in a device stack (cache → wal → raw), if any."""
    seen = 0
    while device is not None and seen < 8:
        if isinstance(device, WriteAheadLog):
            return device
        device = getattr(device, "device", None) or getattr(device, "inner", None)
        seen += 1
    return None


def _encode_cell(value):
    if isinstance(value, LongField):
        return {"$lf": [value.field_id, value.length]}
    if isinstance(value, bytes):
        return {"$bytes": base64.b64encode(value).decode("ascii")}
    return value


def _decode_cell(value):
    if isinstance(value, dict):
        if "$lf" in value:
            field_id, length = value["$lf"]
            return LongField(int(field_id), int(length))
        if "$bytes" in value:
            return base64.b64decode(value["$bytes"])
        raise DatabaseError(f"unknown encoded cell {sorted(value)}")
    return value


def save_database(db: Database, path: str | Path) -> Path:
    """Persist a database (catalog + device) into a directory.

    Both files land atomically (temp file + rename), image first and
    ``catalog.json`` last — the catalog rename is the commit point.  A
    crash between the two leaves a new image beside an old catalog; that
    window is covered when the store is opened with ``wal=True``, because
    the journal's committed metadata (which matches the image) overrides
    the catalog's field table.
    """
    if db.lfm is None:
        raise DatabaseError("only databases with a Long Field Manager can be saved")
    if getattr(db.lfm.device, "in_transaction", False):
        raise DatabaseError("cannot save a database inside an open transaction")
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    wal = _find_wal(db.lfm.device)
    db.lfm.device.dump(path / "device.img")
    tables = []
    for name in db.table_names():
        table = db.catalog.table(name)
        tables.append(
            {
                "name": table.name,
                "columns": [[c.name, c.sql_type.value] for c in table.schema.columns],
                "rows": [[_encode_cell(v) for v in row] for row in table.scan()],
            }
        )
    meta = {
        "version": _FORMAT_VERSION,
        "device": {
            "capacity": db.lfm.device.capacity,
            "page_size": db.lfm.device.page_size,
        },
        "lfm": db.lfm.export_state(),
        "tables": tables,
    }
    spatial = db.catalog.spatial_index_defs()
    if spatial:
        meta["spatial_indexes"] = [
            {"name": name, "table": table, "column": column}
            for name, table, column in spatial
        ]
    if any(db.catalog.table(n).stats.spatial_enabled for n in db.table_names()):
        meta["analyzed"] = True
    if wal is not None:
        # Persist the txn-id floor: on reload, recovery rejects any journal
        # record older than this even if the journal's own checkpoint
        # record was lost to a crash during reset_journal() below.
        meta["wal"] = {"next_txn_id": wal.next_txn_id}
    tmp = path / "catalog.json.tmp"
    tmp.write_text(json.dumps(meta))
    os.replace(tmp, path / "catalog.json")
    if wal is not None:
        # The catalog now checkpoints everything the journal guaranteed.
        wal.reset_journal()
    return path


def load_database(
    path: str | Path,
    in_memory: bool = False,
    wal: bool = False,
    journal_capacity: int = DEFAULT_JOURNAL_CAPACITY,
) -> Database:
    """Reopen a saved database.

    With ``in_memory`` the device image is copied into memory (the original
    files stay untouched); otherwise the device maps the image file
    directly and writes persist.

    With ``wal=True`` the device is wrapped in a
    :class:`~repro.storage.wal.WriteAheadLog` over a ``wal.log`` journal in
    the same directory.  Opening runs recovery: committed transactions the
    last process journaled but never checkpointed are replayed, and their
    metadata — which matches the replayed pages — takes precedence over
    the (possibly older) catalog's field table.
    """
    path = Path(path)
    try:
        meta = json.loads((path / "catalog.json").read_text())
    except FileNotFoundError:
        raise DatabaseError(f"{path} does not contain a saved database") from None
    if meta.get("version") != _FORMAT_VERSION:
        raise DatabaseError(f"unsupported database format {meta.get('version')!r}")
    capacity = meta["device"]["capacity"]
    page_size = meta["device"]["page_size"]
    if in_memory:
        device = BlockDevice(capacity, page_size=page_size)
        image = (path / "device.img").read_bytes()
        # Bulk image restore is deliberately unaccounted device I/O.
        device._backing.buf[: len(image)] = image  # qblint: disable=no-raw-device-io
    else:
        device = BlockDevice(
            capacity, path=path / "device.img", page_size=page_size,
            preserve_contents=True,
        )
    lfm_state = meta["lfm"]
    if wal:
        journal_path = path / _JOURNAL_FILE
        if in_memory:
            image = journal_path.read_bytes() if journal_path.exists() else b""
            # Never truncate an existing journal: its tail may hold committed
            # transactions (mirrors the never-truncate rule of the
            # file-backed branch below).
            size = max(
                journal_capacity,
                -(-len(image) // page_size) * page_size,
            )
            journal = BlockDevice(size, page_size=page_size)
            # qblint: disable=no-raw-device-io
            journal._backing.buf[: len(image)] = image
        elif journal_path.exists():
            # An existing journal may hold unreplayed transactions: open it
            # at its own size, never truncate it.
            journal = BlockDevice(
                journal_path.stat().st_size, path=journal_path,
                page_size=page_size, preserve_contents=True,
            )
        else:
            journal = BlockDevice(
                journal_capacity, path=journal_path, page_size=page_size,
            )
        waldev = WriteAheadLog(
            device, journal, recover=True,
            next_txn_id=int(meta.get("wal", {}).get("next_txn_id", 1)),
        )
        if waldev.last_committed_meta is not None:
            lfm_state = waldev.last_committed_meta
        device = waldev
    lfm = LongFieldManager.restore(device, lfm_state)
    db = Database(lfm=lfm)
    for spec in meta["tables"]:
        columns = [Column(name, SqlType(type_name)) for name, type_name in spec["columns"]]
        table = db.catalog.create_table(TableSchema(spec["name"], columns))
        for row in spec["rows"]:
            table.insert([_decode_cell(v) for v in row])
    # Indexes and statistics are derived state: re-derive them through the
    # SQL layer (the executor owns payload reads) instead of serializing
    # the structures themselves.
    for spec in meta.get("spatial_indexes", ()):
        db.execute(
            f"create spatial index {spec['name']} "
            f"on {spec['table']} ({spec['column']})"
        )
    if meta.get("analyzed"):
        db.execute("analyze")
    # The rows above were loaded outside the SQL layer; publish once so
    # readers start on the lock-free snapshot path instead of falling
    # back to the read lock forever.
    db.publish_snapshot()
    return db
