"""The extensible relational engine (the reproduction's "Starburst")."""

from __future__ import annotations

from repro.db.catalog import Catalog
from repro.db.database import Database, QueryResult
from repro.db.diagnostics import CODES, Diagnostic
from repro.db.executor import ResultSet
from repro.db.functions import (
    ExecutionContext,
    FunctionRegistry,
    FunctionSignature,
    WorkCounters,
)
from repro.db.persist import load_database, save_database
from repro.db.schema import Column, TableSchema
from repro.db.semantic import analyze, check
from repro.db.spatial import (
    SPATIAL_FUNCTION_NAMES,
    register_spatial_functions,
    spatial_signatures,
)
from repro.db.sql.ast import Span
from repro.db.table import Table
from repro.db.types import NULL, SqlType, coerce_value, type_of_value

__all__ = [
    "Database",
    "QueryResult",
    "ResultSet",
    "Catalog",
    "Table",
    "Column",
    "TableSchema",
    "SqlType",
    "coerce_value",
    "type_of_value",
    "NULL",
    "FunctionRegistry",
    "FunctionSignature",
    "ExecutionContext",
    "WorkCounters",
    "register_spatial_functions",
    "spatial_signatures",
    "SPATIAL_FUNCTION_NAMES",
    "save_database",
    "load_database",
    "Diagnostic",
    "CODES",
    "Span",
    "analyze",
    "check",
]
