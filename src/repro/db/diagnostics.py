"""Structured diagnostics for the SQL semantic analyzer.

Every problem the static pass finds is a :class:`Diagnostic`: a stable
``QBxxx`` error code, a human message, and the source :class:`Span` of the
offending token (threaded through the lexer and parser).  Codes are grouped
by hundreds:

* ``QB1xx`` — name resolution and statement structure (unknown or ambiguous
  tables/columns/functions, misplaced aggregates);
* ``QB2xx`` — typing (operator/operand mismatches, UDF arity and argument
  types, INSERT/UPDATE value checks);
* ``QB3xx`` — spatial misuse (LONGFIELD values in scalar contexts).

Codes are part of the engine's public contract: tests and clients match on
them, so a code is never renumbered or reused once shipped.
``raise_diagnostics`` converts the first error into the exception type
callers of the *runtime* engine already catch for the same mistake
(:class:`~repro.errors.CatalogError` for resolution, ``SqlTypeError`` for
typing, ``ExecutionError`` for aggregate misuse), so moving a check from
execution time to analysis time is invisible to error handling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.sql.ast import Span
from repro.errors import (
    AggregateUsageError,
    FunctionUsageError,
    ResolutionError,
    SpatialUsageError,
    StaticAnalysisError,
    TypeCheckError,
    ValidationError,
)

__all__ = ["Diagnostic", "CODES", "raise_diagnostics", "error_class_for"]


#: stable code -> one-line description (the documented catalog)
CODES: dict[str, str] = {
    # QB1xx — resolution / structure
    "QB101": "unknown table",
    "QB102": "unknown column",
    "QB103": "ambiguous column reference",
    "QB104": "unknown function",
    "QB105": "duplicate table binding in FROM",
    "QB106": "table already exists",
    "QB107": "unknown table or alias qualifier",
    "QB110": "aggregate not allowed in this clause",
    "QB111": "HAVING requires GROUP BY or aggregates",
    "QB112": "aggregates cannot be nested",
    "QB113": "subquery must produce exactly one column",
    "QB114": "column must appear in GROUP BY or inside an aggregate",
    "QB115": "aggregate takes exactly one argument",
    # QB2xx — typing
    "QB201": "operator not defined for operand types",
    "QB202": "comparison between incompatible types",
    "QB203": "wrong number of arguments to function",
    "QB204": "argument type mismatch in function call",
    "QB205": "unknown SQL type name",
    "QB206": "INSERT arity mismatch",
    "QB207": "value not storable in column",
    "QB208": "duplicate column name in CREATE TABLE",
    # QB3xx — spatial / LONGFIELD misuse
    "QB301": "LONGFIELD value used in a scalar context",
    "QB302": "LONGFIELD values cannot be ordered",
    "QB303": "LONGFIELD value in a numeric aggregate",
}

#: code -> exception class raised when the diagnostic is an error
_ERROR_CLASSES: dict[str, type[StaticAnalysisError]] = {
    "QB101": ResolutionError,
    "QB102": ResolutionError,
    "QB103": ResolutionError,
    "QB104": ResolutionError,
    "QB105": ResolutionError,
    "QB106": ResolutionError,
    "QB107": ResolutionError,
    "QB110": AggregateUsageError,
    "QB111": AggregateUsageError,
    "QB112": AggregateUsageError,
    "QB113": AggregateUsageError,
    "QB114": AggregateUsageError,
    "QB115": AggregateUsageError,
    "QB201": TypeCheckError,
    "QB202": TypeCheckError,
    "QB203": FunctionUsageError,
    "QB204": FunctionUsageError,
    "QB205": TypeCheckError,
    "QB206": TypeCheckError,
    "QB207": TypeCheckError,
    "QB208": TypeCheckError,
    "QB301": SpatialUsageError,
    "QB302": SpatialUsageError,
    "QB303": SpatialUsageError,
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the semantic analyzer."""

    code: str
    message: str
    span: Span | None = None

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValidationError(f"undeclared diagnostic code {self.code!r}")

    def format(self) -> str:
        """``QB102: unknown column 'x' (line 1, column 8)``."""
        location = f" ({self.span})" if self.span is not None else ""
        return f"{self.code}: {self.message}{location}"


def error_class_for(code: str) -> type[StaticAnalysisError]:
    """The exception class a diagnostic code raises as."""
    return _ERROR_CLASSES[code]


def raise_diagnostics(diagnostics: list[Diagnostic]) -> None:
    """Raise for the first diagnostic (no-op on an empty list).

    The raised exception carries *all* diagnostics so callers that want the
    complete report (the SQL console, tests) can show every problem at once.
    """
    if not diagnostics:
        return
    raise error_class_for(diagnostics[0].code)(diagnostics)
