"""Catalog-aware semantic analysis of parsed SQL, run between parse and plan.

The analyzer makes one pass over a statement and checks everything that can
be decided without touching a single row:

* **Resolution** — every table, alias, column, and function name resolves;
  unqualified columns are unambiguous across the FROM tables; correlated
  subqueries resolve inner-scope-first then outward, mirroring the
  executor's environment chain exactly.
* **Typing** — expression types are inferred bottom-up from the catalog's
  column types (:class:`~repro.db.types.SqlType`); operators and UDF calls
  are checked against the declared signature table in
  :mod:`repro.db.functions` (arity and per-argument types).
* **Spatial misuse** — LONGFIELD values (REGION/VOLUME handles) may flow
  into functions, equality tests, and select lists, but never into
  arithmetic, ordering, logical connectives, or numeric aggregates.

Findings are :class:`~repro.db.diagnostics.Diagnostic` records with stable
``QBxxx`` codes and source spans.  ``check`` raises the first error as the
legacy exception type runtime callers already catch, so the static pass
moves failures *earlier* (before any Long Field Manager I/O is issued)
without changing what callers handle.  Inference is deliberately
conservative: an unknown type (parameters, undeclared UDF results) never
produces a diagnostic, so every query that would execute successfully still
passes analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.catalog import Catalog
from repro.db.diagnostics import Diagnostic, raise_diagnostics
from repro.db.functions import ANY, FunctionRegistry
from repro.db.schema import TableSchema
from repro.db.sql.ast import (
    Analyze,
    BinOp,
    ColumnRef,
    CreateIndex,
    CreateSpatialIndex,
    CreateTable,
    Delete,
    DropIndex,
    DropTable,
    Exists,
    Explain,
    Expr,
    FuncCall,
    InSubquery,
    Insert,
    Literal,
    Param,
    Select,
    Span,
    Star,
    Statement,
    Subquery,
    UnaryOp,
    Update,
)
from repro.db.types import SqlType, coerce_value, type_of_value
from repro.errors import SqlTypeError

__all__ = ["SemanticAnalyzer", "analyze", "check"]

_AGGREGATES = {"count", "sum", "avg", "min", "max"}
_NUMERIC = {SqlType.INTEGER, SqlType.REAL}
#: types arithmetic accepts (booleans are ints to the runtime, as in Python)
_ARITHMETIC = {SqlType.INTEGER, SqlType.REAL, SqlType.BOOLEAN}
_ORDERING_OPS = {"<", "<=", ">", ">="}
_COMPARISON_OPS = {"=", "<>"} | _ORDERING_OPS


def _comparable(a: SqlType, b: SqlType) -> bool:
    """Can values of these two types meet in a comparison at runtime?"""
    if a in _ARITHMETIC and b in _ARITHMETIC:
        return True
    return a is b


@dataclass
class _Scope:
    """Static model of the executor's environment chain.

    ``bindings`` maps a FROM binding name to its schema; a ``None`` schema
    marks a table that failed to resolve (already diagnosed), which then
    absorbs column lookups silently instead of cascading false errors.
    """

    bindings: dict[str, TableSchema | None] = field(default_factory=dict)
    outer: "_Scope | None" = None


@dataclass
class _SelectInfo:
    """What an analyzed SELECT exposes to its enclosing expression."""

    column_count: int | None  # None when a '*' hit an unresolved table
    column_names: list[str]
    single_type: SqlType | None  # type of the only column, when known


class SemanticAnalyzer:
    """One-statement semantic pass against a catalog and function registry."""

    def __init__(self, catalog: Catalog, functions: FunctionRegistry | None = None):
        self.catalog = catalog
        self.functions = functions
        self.diagnostics: list[Diagnostic] = []

    # -------------------------------------------------------------- #
    # entry points
    # -------------------------------------------------------------- #

    def analyze(self, stmt: Statement) -> list[Diagnostic]:
        """Collect every diagnostic for one statement."""
        if isinstance(stmt, Explain):
            # EXPLAIN adds no names of its own; analyze what it wraps.
            stmt = stmt.statement
        if isinstance(stmt, Select):
            self._select(stmt, None)
        elif isinstance(stmt, Insert):
            self._insert(stmt)
        elif isinstance(stmt, Update):
            self._update(stmt)
        elif isinstance(stmt, Delete):
            self._delete(stmt)
        elif isinstance(stmt, CreateTable):
            self._create_table(stmt)
        elif isinstance(stmt, CreateIndex):
            self._create_index(stmt)
        elif isinstance(stmt, CreateSpatialIndex):
            self._create_spatial_index(stmt)
        elif isinstance(stmt, Analyze):
            self._analyze_stmt(stmt)
        elif isinstance(stmt, DropTable):
            self._drop_table(stmt)
        elif isinstance(stmt, DropIndex):
            pass  # index existence is checked by the catalog at run time
        return self.diagnostics

    def _error(self, code: str, message: str, span: Span | None) -> None:
        self.diagnostics.append(Diagnostic(code, message, span))

    # -------------------------------------------------------------- #
    # statements
    # -------------------------------------------------------------- #

    def _select(self, select: Select, outer: _Scope | None) -> _SelectInfo:
        scope = _Scope(outer=outer)
        for ref in select.tables:
            if ref.binding in scope.bindings:
                self._error(
                    "QB105", f"duplicate table binding {ref.binding!r} in FROM", ref.span
                )
                continue
            if ref.name in self.catalog:
                scope.bindings[ref.binding] = self.catalog.table(ref.name).schema
            else:
                self._error("QB101", f"no such table {ref.name!r}", ref.span)
                scope.bindings[ref.binding] = None

        grouped = bool(select.group_by) or any(
            not isinstance(item.expr, Star) and _contains_aggregate(item.expr)
            for item in select.items
        )

        if select.where is not None:
            self._expr(select.where, scope, allow_aggregates=False)
        for group_expr in select.group_by:
            self._expr(group_expr, scope, allow_aggregates=False)
        if select.having is not None:
            if not grouped:
                self._error(
                    "QB111", "HAVING requires GROUP BY or aggregates", select.span
                )
            else:
                self._expr(select.having, scope, allow_aggregates=True)

        # Select list: infer types, expand stars, derive output column names.
        column_count: int | None = 0
        column_names: list[str] = []
        single_type: SqlType | None = None
        for item in select.items:
            if isinstance(item.expr, Star):
                for schema in scope.bindings.values():
                    if schema is None:
                        column_count = None
                    elif column_count is not None:
                        column_count += len(schema)
                    if schema is not None:
                        column_names.extend(schema.column_names())
                continue
            item_type = self._expr(item.expr, scope, allow_aggregates=True)
            if column_count == 0:
                single_type = item_type
            if column_count is not None:
                column_count += 1
            column_names.append(item.alias or _derive_name(item.expr))
        if column_count != 1:
            single_type = None

        # ORDER BY: a bare column name may target a select-list alias; other
        # expressions resolve against the FROM scope.
        aliases = {name.lower() for name in column_names}
        order_exprs: list[Expr] = []
        for order_item in select.order_by:
            expr = order_item.expr
            if (
                isinstance(expr, ColumnRef)
                and expr.qualifier is None
                and expr.name.lower() in aliases
            ):
                continue
            self._expr(expr, scope, allow_aggregates=grouped)
            order_exprs.append(expr)

        if grouped:
            for item in select.items:
                self._check_grouped(item.expr, select)
            if select.having is not None:
                self._check_grouped(select.having, select)
            for expr in order_exprs:
                self._check_grouped(expr, select)

        return _SelectInfo(column_count, column_names, single_type)

    def _insert(self, stmt: Insert) -> None:
        schema = self._require_table(stmt.table, stmt.span)
        targets: list[tuple[str, SqlType] | None] | None = None
        if schema is not None:
            if stmt.columns is None:
                targets = [(c.name, c.sql_type) for c in schema.columns]
            else:
                targets = []
                for name in stmt.columns:
                    if name in schema:
                        column = schema.column(name)
                        targets.append((column.name, column.sql_type))
                    else:
                        self._error(
                            "QB102",
                            f"table {stmt.table!r} has no column {name!r}",
                            stmt.span,
                        )
                        targets.append(None)
        scope = _Scope()  # INSERT values reference no tables
        for row in stmt.rows:
            if targets is not None and len(row) != len(targets):
                if stmt.columns is not None:
                    message = "INSERT column list and VALUES length differ"
                else:
                    message = (
                        f"table {stmt.table!r} has {len(targets)} columns, "
                        f"got {len(row)} values"
                    )
                self._error("QB206", message, stmt.span)
                continue
            for position, expr in enumerate(row):
                value_type = self._expr(expr, scope, allow_aggregates=False)
                if targets is None or targets[position] is None:
                    continue
                name, sql_type = targets[position]
                self._check_storable(expr, value_type, name, sql_type)

    def _update(self, stmt: Update) -> None:
        schema = self._require_table(stmt.table, stmt.span)
        scope = _Scope(bindings={stmt.table: schema} if schema is not None else {})
        for column, expr in stmt.assignments:
            value_type = self._expr(expr, scope, allow_aggregates=False)
            if schema is None:
                continue
            if column not in schema:
                self._error(
                    "QB102", f"table {stmt.table!r} has no column {column!r}", stmt.span
                )
                continue
            target = schema.column(column)
            self._check_storable(expr, value_type, target.name, target.sql_type)
        if stmt.where is not None:
            self._expr(stmt.where, scope, allow_aggregates=False)

    def _delete(self, stmt: Delete) -> None:
        schema = self._require_table(stmt.table, stmt.span)
        scope = _Scope(bindings={stmt.table: schema} if schema is not None else {})
        if stmt.where is not None:
            self._expr(stmt.where, scope, allow_aggregates=False)

    def _create_table(self, stmt: CreateTable) -> None:
        if stmt.table in self.catalog:
            self._error("QB106", f"table {stmt.table!r} already exists", stmt.span)
        seen: set[str] = set()
        for name, type_name in stmt.columns:
            if name.lower() in seen:
                self._error(
                    "QB208",
                    f"duplicate column {name!r} in table {stmt.table!r}",
                    stmt.span,
                )
            seen.add(name.lower())
            try:
                SqlType.from_name(type_name)
            except SqlTypeError:
                self._error("QB205", f"unknown SQL type {type_name!r}", stmt.span)

    def _create_index(self, stmt: CreateIndex) -> None:
        schema = self._require_table(stmt.table, stmt.span)
        if schema is not None and stmt.column not in schema:
            self._error(
                "QB102",
                f"table {stmt.table!r} has no column {stmt.column!r}",
                stmt.span,
            )

    def _create_spatial_index(self, stmt: CreateSpatialIndex) -> None:
        schema = self._require_table(stmt.table, stmt.span)
        if schema is None:
            return
        if stmt.column not in schema:
            self._error(
                "QB102",
                f"table {stmt.table!r} has no column {stmt.column!r}",
                stmt.span,
            )
            return
        if schema.column(stmt.column).sql_type is not SqlType.LONGFIELD:
            self._error(
                "QB209",
                f"spatial index requires a LONGFIELD column; "
                f"{stmt.column!r} is {schema.column(stmt.column).sql_type.value}",
                stmt.span,
            )

    def _analyze_stmt(self, stmt: Analyze) -> None:
        if stmt.table is not None:
            self._require_table(stmt.table, stmt.span)

    def _drop_table(self, stmt: DropTable) -> None:
        self._require_table(stmt.table, stmt.span)

    def _require_table(self, name: str, span: Span | None) -> TableSchema | None:
        if name in self.catalog:
            return self.catalog.table(name).schema
        self._error("QB101", f"no such table {name!r}", span)
        return None

    # -------------------------------------------------------------- #
    # expression typing
    # -------------------------------------------------------------- #

    def _expr(self, expr: Expr, scope: _Scope, *, allow_aggregates: bool,
              in_aggregate: bool = False) -> SqlType | None:
        """Infer an expression's type, emitting diagnostics along the way.

        Returns ``None`` when the type is statically unknown (parameters,
        NULL, undeclared UDF results) — unknown never produces an error.
        """
        if isinstance(expr, Literal):
            try:
                return type_of_value(expr.value)
            except SqlTypeError:  # a host value with no SQL type: unknown
                return None
        if isinstance(expr, Param):
            return None
        if isinstance(expr, ColumnRef):
            return self._resolve_column(expr, scope)
        if isinstance(expr, Star):
            return None  # placement is validated by its consumers
        if isinstance(expr, UnaryOp):
            operand = self._expr(
                expr.operand, scope,
                allow_aggregates=allow_aggregates, in_aggregate=in_aggregate,
            )
            if operand is SqlType.LONGFIELD:
                self._error(
                    "QB301",
                    f"LONGFIELD value cannot be the operand of {expr.op!r}; "
                    "use a spatial function",
                    expr.span,
                )
                return None
            if expr.op == "-":
                if operand is not None and operand not in _ARITHMETIC:
                    self._error(
                        "QB201",
                        f"unary '-' is not defined for {operand.value} values",
                        expr.span,
                    )
                    return None
                if operand is SqlType.BOOLEAN:
                    return SqlType.INTEGER
                return operand
            return SqlType.BOOLEAN  # 'not'
        if isinstance(expr, BinOp):
            return self._binop(
                expr, scope, allow_aggregates=allow_aggregates, in_aggregate=in_aggregate
            )
        if isinstance(expr, FuncCall):
            return self._call(
                expr, scope, allow_aggregates=allow_aggregates, in_aggregate=in_aggregate
            )
        if isinstance(expr, Subquery):
            info = self._select(expr.select, scope)
            if info.column_count is not None and info.column_count != 1:
                self._error(
                    "QB113", "scalar subquery must produce exactly one column", expr.span
                )
            return info.single_type
        if isinstance(expr, InSubquery):
            value_type = self._expr(
                expr.value, scope,
                allow_aggregates=allow_aggregates, in_aggregate=in_aggregate,
            )
            info = self._select(expr.subquery, scope)
            if info.column_count is not None and info.column_count != 1:
                self._error(
                    "QB113", "IN subquery must produce exactly one column", expr.span
                )
            elif (
                value_type is not None
                and info.single_type is not None
                and not _comparable(value_type, info.single_type)
            ):
                self._error(
                    "QB202",
                    f"cannot test a {value_type.value} value for membership in "
                    f"a {info.single_type.value} subquery",
                    expr.span,
                )
            return SqlType.BOOLEAN
        if isinstance(expr, Exists):
            self._select(expr.subquery, scope)
            return SqlType.BOOLEAN
        return None

    def _binop(self, expr: BinOp, scope: _Scope, *, allow_aggregates: bool,
               in_aggregate: bool) -> SqlType | None:
        left = self._expr(
            expr.left, scope, allow_aggregates=allow_aggregates, in_aggregate=in_aggregate
        )
        right = self._expr(
            expr.right, scope, allow_aggregates=allow_aggregates, in_aggregate=in_aggregate
        )
        op = expr.op
        if op in ("and", "or"):
            for side in (left, right):
                if side is SqlType.LONGFIELD:
                    self._error(
                        "QB301",
                        f"LONGFIELD value cannot be an operand of {op!r}",
                        expr.span,
                    )
            return SqlType.BOOLEAN
        if op == "||":
            for side in (left, right):
                if side is SqlType.LONGFIELD:
                    self._error(
                        "QB301",
                        "LONGFIELD value cannot be concatenated; "
                        "extract or aggregate it first",
                        expr.span,
                    )
            return SqlType.TEXT
        if op in _COMPARISON_OPS:
            if left is SqlType.LONGFIELD and right is SqlType.LONGFIELD:
                if op in _ORDERING_OPS:
                    self._error(
                        "QB302",
                        "LONGFIELD values cannot be ordered; compare derived "
                        "scalars (voxelCount, dataMean, ...) instead",
                        expr.span,
                    )
            elif left is not None and right is not None and not _comparable(left, right):
                self._error(
                    "QB202",
                    f"cannot compare {left.value} with {right.value}",
                    expr.span,
                )
            return SqlType.BOOLEAN
        # arithmetic: + - * /
        for side in (left, right):
            if side is SqlType.LONGFIELD:
                self._error(
                    "QB301",
                    f"LONGFIELD value cannot be an operand of {op!r}; "
                    "use a spatial function",
                    expr.span,
                )
                return None
        for side in (left, right):
            if side is not None and side not in _ARITHMETIC:
                self._error(
                    "QB201",
                    f"operator {op!r} is not defined for {side.value} values",
                    expr.span,
                )
                return None
        if op == "/":
            return SqlType.REAL if left is not None and right is not None else None
        if left is None or right is None:
            return None
        if SqlType.REAL in (left, right):
            return SqlType.REAL
        return SqlType.INTEGER

    def _call(self, expr: FuncCall, scope: _Scope, *, allow_aggregates: bool,
              in_aggregate: bool) -> SqlType | None:
        name = expr.name
        lowered = name.lower()
        if name == "__is_null":  # desugared IS [NOT] NULL
            self._expr(
                expr.args[0], scope,
                allow_aggregates=allow_aggregates, in_aggregate=in_aggregate,
            )
            return SqlType.BOOLEAN
        if lowered in _AGGREGATES:
            return self._aggregate(
                expr, scope, allow_aggregates=allow_aggregates, in_aggregate=in_aggregate
            )
        arg_types = [
            self._expr(
                arg, scope, allow_aggregates=allow_aggregates, in_aggregate=in_aggregate
            )
            for arg in expr.args
        ]
        if self.functions is None:
            return None
        if name not in self.functions:
            self._error("QB104", f"no such function {name!r}", expr.span)
            return None
        signature = self.functions.signature(name)
        if signature is None:
            return None
        if not signature.arity_ok(len(expr.args)):
            self._error(
                "QB203",
                f"function {name}() takes {signature.arity_description()} "
                f"argument(s), got {len(expr.args)}",
                expr.span,
            )
            return signature.returns
        for position, arg_type in enumerate(arg_types):
            spec = signature.param_spec(position)
            if spec is ANY or arg_type is None:
                continue
            if arg_type not in spec:
                expected = " or ".join(sorted(t.value for t in spec))
                self._error(
                    "QB204",
                    f"argument {position + 1} of {name}() expects {expected}, "
                    f"got {arg_type.value}",
                    expr.args[position].span or expr.span,
                )
        return signature.returns

    def _aggregate(self, expr: FuncCall, scope: _Scope, *, allow_aggregates: bool,
                   in_aggregate: bool) -> SqlType | None:
        name = expr.name.lower()
        if not allow_aggregates:
            self._error(
                "QB110",
                f"aggregate {expr.name}() is not allowed in this clause",
                expr.span,
            )
            return None
        if in_aggregate:
            self._error("QB112", "aggregates cannot be nested", expr.span)
            return None
        if name == "count" and len(expr.args) == 1 and isinstance(expr.args[0], Star):
            return SqlType.INTEGER
        if len(expr.args) != 1:
            self._error(
                "QB115",
                f"aggregate {expr.name}() takes exactly one argument",
                expr.span,
            )
            return None
        arg_type = self._expr(
            expr.args[0], scope, allow_aggregates=allow_aggregates, in_aggregate=True
        )
        if name in ("sum", "avg"):
            if arg_type is SqlType.LONGFIELD:
                self._error(
                    "QB303",
                    f"{expr.name}() cannot aggregate LONGFIELD values; "
                    "reduce them with dataMean/voxelCount first",
                    expr.span,
                )
                return None
            if arg_type is SqlType.TEXT:
                self._error(
                    "QB201",
                    f"{expr.name}() is not defined for text values",
                    expr.span,
                )
                return None
        if name == "count":
            return SqlType.INTEGER
        if name == "avg":
            return SqlType.REAL
        return arg_type

    # -------------------------------------------------------------- #
    # resolution and grouped-context checking
    # -------------------------------------------------------------- #

    def _resolve_column(self, ref: ColumnRef, scope: _Scope) -> SqlType | None:
        """Resolve a column through the scope chain, inner-first (SQL rules)."""
        current: _Scope | None = scope
        while current is not None:
            if ref.qualifier is not None:
                key = ref.qualifier.lower()
                for binding, schema in current.bindings.items():
                    if binding.lower() != key:
                        continue
                    if schema is None:
                        return None  # table already diagnosed
                    if ref.name in schema:
                        return schema.column(ref.name).sql_type
                    self._error(
                        "QB102",
                        f"table or alias {ref.qualifier!r} has no column {ref.name!r}",
                        ref.span,
                    )
                    return None
            else:
                owners = [
                    schema
                    for schema in current.bindings.values()
                    if schema is not None and ref.name in schema
                ]
                has_unknown = any(s is None for s in current.bindings.values())
                if len(owners) > 1 and not has_unknown:
                    self._error(
                        "QB103", f"column {ref.name!r} is ambiguous", ref.span
                    )
                    return None
                if owners:
                    return owners[0].column(ref.name).sql_type
                if has_unknown:
                    return None  # might live in the unresolved table
            current = current.outer
        if ref.qualifier is not None:
            self._error(
                "QB107", f"unknown table or alias {ref.qualifier!r}", ref.span
            )
        else:
            self._error(
                "QB102", f"no table in FROM has a column {ref.name!r}", ref.span
            )
        return None

    def _check_grouped(self, expr: Expr, select: Select) -> None:
        """Enforce the GROUP BY visibility rule on one output expression.

        Mirrors the executor's grouped evaluator: an expression is valid if
        it is a grouping expression, a literal/parameter, an aggregate fold,
        a nested query block (evaluated on a representative row), or a
        composition of valid parts.  A bare column outside all of those
        cannot be evaluated per-group.
        """
        for group_expr in select.group_by:
            if expr == group_expr:
                return
        if isinstance(expr, (Literal, Param, Subquery, InSubquery, Exists)):
            return
        if isinstance(expr, FuncCall):
            if expr.name.lower() in _AGGREGATES:
                return
            for arg in expr.args:
                self._check_grouped(arg, select)
            return
        if isinstance(expr, BinOp):
            self._check_grouped(expr.left, select)
            self._check_grouped(expr.right, select)
            return
        if isinstance(expr, UnaryOp):
            self._check_grouped(expr.operand, select)
            return
        if isinstance(expr, ColumnRef):
            self._error(
                "QB114",
                f"column {expr} must appear in GROUP BY or inside an aggregate",
                expr.span,
            )
            return
        if isinstance(expr, Star):
            self._error(
                "QB114",
                "'*' must appear inside count(*) in a grouped query",
                expr.span,
            )

    def _check_storable(self, expr: Expr, value_type: SqlType | None,
                        column: str, target: SqlType) -> None:
        """Flag values that can never be stored in a column of ``target`` type."""
        constant = _fold_constant(expr)
        if constant is not _NO_CONSTANT:
            try:
                coerce_value(constant, target)
            except SqlTypeError as exc:
                self._error("QB207", f"{exc} (column {column!r})", expr.span)
            return
        if value_type is None:
            return
        if target in _NUMERIC:
            compatible = value_type in _NUMERIC
        else:
            compatible = value_type is target
        if not compatible:
            self._error(
                "QB207",
                f"cannot store a {value_type.value} value in "
                f"{target.value} column {column!r}",
                expr.span,
            )


#: sentinel: expression is not a foldable constant
_NO_CONSTANT = object()


def _fold_constant(expr: Expr):
    """Evaluate literal expressions (including negated numbers) statically."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, UnaryOp) and expr.op == "-":
        inner = _fold_constant(expr.operand)
        if isinstance(inner, (int, float)) and not isinstance(inner, bool):
            return -inner
    return _NO_CONSTANT


def _contains_aggregate(expr: Expr) -> bool:
    if isinstance(expr, FuncCall):
        if expr.name.lower() in _AGGREGATES:
            return True
        return any(_contains_aggregate(arg) for arg in expr.args)
    if isinstance(expr, BinOp):
        return _contains_aggregate(expr.left) or _contains_aggregate(expr.right)
    if isinstance(expr, UnaryOp):
        return _contains_aggregate(expr.operand)
    return False


def _derive_name(expr: Expr) -> str:
    if isinstance(expr, ColumnRef):
        return expr.name
    if isinstance(expr, FuncCall):
        return expr.name
    return "expr"


def analyze(stmt: Statement, catalog: Catalog,
            functions: FunctionRegistry | None = None) -> list[Diagnostic]:
    """All diagnostics for one parsed statement (empty list = clean)."""
    return SemanticAnalyzer(catalog, functions).analyze(stmt)


def check(stmt: Statement, catalog: Catalog,
          functions: FunctionRegistry | None = None) -> None:
    """Analyze and raise on the first error diagnostic."""
    raise_diagnostics(analyze(stmt, catalog, functions))
