"""Abstract syntax tree for the SQL subset.

Expressions and statements are plain frozen dataclasses; the executor walks
them directly (the engine compiles no bytecode — queries here are small and
the heavy lifting happens inside the spatial functions, as in the paper).

Every node carries an optional :class:`Span` — the source position of the
token that introduced it, threaded through from the lexer — so the semantic
analyzer can attach precise locations to its diagnostics.  Spans never
participate in equality or hashing: the executor compares and caches nodes
structurally (GROUP BY matching, per-statement subquery memoization), and
two occurrences of the same expression must stay equal even though they sit
at different source positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Span",
    "Expr",
    "Literal",
    "Param",
    "ColumnRef",
    "FuncCall",
    "BinOp",
    "UnaryOp",
    "Star",
    "Subquery",
    "InSubquery",
    "Exists",
    "SelectItem",
    "TableRef",
    "OrderItem",
    "Select",
    "Insert",
    "CreateTable",
    "DropTable",
    "Delete",
    "Update",
    "CreateIndex",
    "DropIndex",
    "CreateSpatialIndex",
    "Analyze",
    "Explain",
    "Statement",
]


@dataclass(frozen=True)
class Span:
    """A 1-based (line, column) source position of one token."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"line {self.line}, column {self.column}"


#: shorthand for the span field every node carries (excluded from equality)
def _span_field():
    return field(default=None, compare=False, repr=False)


class Expr:
    """Base class for expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expr):
    """A literal constant (number, string, NULL, or boolean)."""
    value: object
    span: Span | None = _span_field()


@dataclass(frozen=True)
class Param(Expr):
    """A ``?`` placeholder, bound positionally at execution time."""

    index: int
    span: Span | None = _span_field()


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A column reference, optionally qualified by a table name."""
    qualifier: str | None
    name: str
    span: Span | None = _span_field()

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class FuncCall(Expr):
    """A function call expression."""
    name: str
    args: tuple[Expr, ...]
    span: Span | None = _span_field()


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary operation (arithmetic, comparison, or logical)."""
    op: str  # one of = <> < <= > >= + - * / and or ||
    left: Expr
    right: Expr
    span: Span | None = _span_field()


@dataclass(frozen=True)
class UnaryOp(Expr):
    """A unary operation (``-expr`` or ``NOT expr``)."""
    op: str  # '-' or 'not'
    operand: Expr
    span: Span | None = _span_field()


@dataclass(frozen=True)
class Star(Expr):
    """``*`` in a select list or ``count(*)``."""

    span: Span | None = _span_field()


@dataclass(frozen=True)
class SelectItem:
    """One item of a SELECT list: an expression plus optional alias."""
    expr: Expr
    alias: str | None = None
    span: Span | None = _span_field()


@dataclass(frozen=True)
class TableRef:
    """A table named in FROM, with an optional alias."""
    name: str
    alias: str | None = None
    span: Span | None = _span_field()

    @property
    def binding(self) -> str:
        """The name rows of this table are visible under."""
        return self.alias or self.name


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key: an expression plus sort direction."""
    expr: Expr
    ascending: bool = True
    span: Span | None = _span_field()


@dataclass(frozen=True)
class Select:
    """A SELECT statement."""
    items: tuple[SelectItem, ...]
    tables: tuple[TableRef, ...]
    where: Expr | None = None
    group_by: tuple[Expr, ...] = ()
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    distinct: bool = False
    span: Span | None = _span_field()


@dataclass(frozen=True)
class Insert:
    """An INSERT statement."""
    table: str
    columns: tuple[str, ...] | None
    rows: tuple[tuple[Expr, ...], ...]
    span: Span | None = _span_field()


@dataclass(frozen=True)
class CreateTable:
    """A CREATE TABLE statement."""
    table: str
    columns: tuple[tuple[str, str], ...]  # (name, type name)
    span: Span | None = _span_field()


@dataclass(frozen=True)
class DropTable:
    """A DROP TABLE statement."""
    table: str
    span: Span | None = _span_field()


@dataclass(frozen=True)
class Delete:
    """A DELETE statement."""
    table: str
    where: Expr | None = None
    span: Span | None = _span_field()


@dataclass(frozen=True)
class Update:
    """An UPDATE statement."""
    table: str
    assignments: tuple[tuple[str, Expr], ...]
    where: Expr | None = None
    span: Span | None = _span_field()


@dataclass(frozen=True)
class CreateIndex:
    """A CREATE INDEX statement."""
    name: str
    table: str
    column: str
    span: Span | None = _span_field()


@dataclass(frozen=True)
class DropIndex:
    """A DROP INDEX statement."""
    name: str
    span: Span | None = _span_field()


@dataclass(frozen=True)
class CreateSpatialIndex:
    """A CREATE SPATIAL INDEX statement (R-tree over a LONGFIELD column)."""

    name: str
    table: str
    column: str
    span: Span | None = _span_field()


@dataclass(frozen=True)
class Analyze:
    """An ANALYZE statement: recompute optimizer statistics.

    With a table name only that table is analyzed; without one, every
    table in the catalog.
    """

    table: str | None = None
    span: Span | None = _span_field()


@dataclass(frozen=True)
class Subquery(Expr):
    """A nested SELECT used as an expression (scalar or IN-list source)."""

    select: "Select"
    span: Span | None = _span_field()


@dataclass(frozen=True)
class InSubquery(Expr):
    """``expr [NOT] IN (SELECT ...)``."""

    value: Expr
    subquery: "Select"
    negated: bool = False
    span: Span | None = _span_field()


@dataclass(frozen=True)
class Exists(Expr):
    """``[NOT] EXISTS (SELECT ...)``."""

    subquery: "Select"
    negated: bool = False
    span: Span | None = _span_field()


@dataclass(frozen=True)
class Explain:
    """``EXPLAIN [ANALYZE] <statement>``.

    Plain EXPLAIN renders the planner's chosen plan without running it;
    with ``analyze`` the statement is executed and the plan tree comes back
    annotated with per-operator rows, time, and page I/Os.
    """

    statement: "Statement"
    analyze: bool = False
    span: Span | None = _span_field()


Statement = (
    Select | Insert | CreateTable | DropTable | Delete | Update
    | CreateIndex | DropIndex | CreateSpatialIndex | Analyze | Explain
)
