"""SQL tokenizer.

Produces a flat token stream with line/column positions so the parser can
report useful syntax errors.  Keywords are not reserved at the lexer level;
the parser matches identifier tokens case-insensitively.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.errors import SqlSyntaxError

__all__ = ["TokenType", "Token", "tokenize"]


class TokenType(Enum):
    """Kinds of lexical tokens."""
    IDENT = auto()
    NUMBER = auto()
    STRING = auto()
    OPERATOR = auto()
    PARAM = auto()  # a '?' placeholder
    EOF = auto()


@dataclass(frozen=True)
class Token:
    """One lexical token: its kind, text, and source position."""
    type: TokenType
    text: str
    value: object
    line: int
    column: int

    def matches_keyword(self, keyword: str) -> bool:
        """Case-insensitive keyword test for identifier tokens."""
        return self.type is TokenType.IDENT and self.text.lower() == keyword.lower()

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.text!r})"


_TWO_CHAR_OPS = ("<=", ">=", "<>", "!=", "||")
_ONE_CHAR_OPS = "+-*/()=<>,.;"


def tokenize(sql: str) -> list[Token]:
    """Tokenize SQL text; raises :class:`SqlSyntaxError` on bad input."""
    tokens: list[Token] = []
    i = 0
    line, col = 1, 1
    n = len(sql)

    def advance(text: str) -> None:
        nonlocal i, line, col
        for ch in text:
            i += 1
            if ch == "\n":
                line += 1
                col = 1
            else:
                col += 1

    while i < n:
        ch = sql[i]
        if ch in " \t\r\n":
            advance(ch)
            continue
        if sql.startswith("--", i):  # line comment
            end = sql.find("\n", i)
            advance(sql[i:end] if end != -1 else sql[i:])
            continue
        start_line, start_col = line, col
        if ch == "?":
            tokens.append(Token(TokenType.PARAM, "?", None, start_line, start_col))
            advance("?")
            continue
        if ch == "'":
            j = i + 1
            chunks: list[str] = []
            while True:
                if j >= n:
                    raise SqlSyntaxError("unterminated string literal", start_line, start_col)
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":  # escaped quote
                        chunks.append("'")
                        j += 2
                        continue
                    break
                chunks.append(sql[j])
                j += 1
            text = sql[i:j + 1]
            tokens.append(Token(TokenType.STRING, text, "".join(chunks), start_line, start_col))
            advance(text)
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = sql[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    seen_exp = True
                    j += 1
                    if j < n and sql[j] in "+-":
                        j += 1
                else:
                    break
            text = sql[i:j]
            try:
                value: object = float(text) if (seen_dot or seen_exp) else int(text)
            except ValueError:
                raise SqlSyntaxError(f"bad numeric literal {text!r}", start_line, start_col) from None
            tokens.append(Token(TokenType.NUMBER, text, value, start_line, start_col))
            advance(text)
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            text = sql[i:j]
            tokens.append(Token(TokenType.IDENT, text, text, start_line, start_col))
            advance(text)
            continue
        two = sql[i:i + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(Token(TokenType.OPERATOR, two, two, start_line, start_col))
            advance(two)
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token(TokenType.OPERATOR, ch, ch, start_line, start_col))
            advance(ch)
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", start_line, start_col)
    tokens.append(Token(TokenType.EOF, "", None, line, col))
    return tokens
