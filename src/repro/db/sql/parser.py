"""Recursive-descent parser for the SQL subset.

Supported statements::

    SELECT [DISTINCT] expr [AS alias], ... | *
        FROM table [alias], ...
        [WHERE expr] [ORDER BY expr [ASC|DESC], ...] [LIMIT n]
    INSERT INTO table [(col, ...)] VALUES (expr, ...), ...
    CREATE TABLE name (col type, ...)
    DROP TABLE name
    DELETE FROM table [WHERE expr]

Expressions support literals, ``?`` parameters, (qualified) column
references, function calls, arithmetic, comparisons, string concatenation
``||``, ``AND`` / ``OR`` / ``NOT``, ``IS [NOT] NULL``, ``BETWEEN``, and
``IN (value list)`` — everything the paper's §3.4 query patterns use, plus
the conveniences the examples want.
"""

from __future__ import annotations

from repro.db.sql.ast import (
    Analyze,
    BinOp,
    Span,
    ColumnRef,
    CreateIndex,
    CreateSpatialIndex,
    CreateTable,
    Delete,
    DropIndex,
    DropTable,
    Exists,
    Explain,
    Expr,
    FuncCall,
    InSubquery,
    Insert,
    Literal,
    OrderItem,
    Param,
    Select,
    SelectItem,
    Star,
    Statement,
    Subquery,
    TableRef,
    UnaryOp,
    Update,
)
from repro.db.sql.lexer import Token, TokenType, tokenize
from repro.errors import SqlSyntaxError

__all__ = ["parse", "parse_expression"]

_KEYWORDS = {
    "select", "distinct", "from", "where", "group", "having", "order", "by",
    "asc", "desc", "limit", "insert", "into", "values", "create", "drop",
    "table", "delete", "update", "set", "index", "on", "exists",
    "explain", "analyze",
    "and", "or", "not", "as", "is", "null", "true", "false", "between", "in",
}

_COMPARISONS = {"=", "<>", "!=", "<", "<=", ">", ">="}


class _Parser:
    def __init__(self, sql: str):
        self.tokens = tokenize(sql)
        self.pos = 0
        self.param_count = 0

    # -------------------------------------------------------------- #
    # token plumbing
    # -------------------------------------------------------------- #

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def error(self, message: str) -> SqlSyntaxError:
        token = self.peek()
        found = token.text or "end of input"
        return SqlSyntaxError(f"{message} (found {found!r})", token.line, token.column)

    def span_here(self) -> Span:
        """The span of the token about to be consumed."""
        token = self.peek()
        return Span(token.line, token.column)

    @staticmethod
    def span_of(token: Token) -> Span:
        return Span(token.line, token.column)

    def at_keyword(self, *keywords: str) -> bool:
        return any(self.peek().matches_keyword(k) for k in keywords)

    def expect_keyword(self, keyword: str) -> Token:
        if not self.at_keyword(keyword):
            raise self.error(f"expected {keyword.upper()}")
        return self.advance()

    def accept_keyword(self, keyword: str) -> bool:
        if self.at_keyword(keyword):
            self.advance()
            return True
        return False

    def at_operator(self, *ops: str) -> bool:
        token = self.peek()
        return token.type is TokenType.OPERATOR and token.text in ops

    def expect_operator(self, op: str) -> Token:
        if not self.at_operator(op):
            raise self.error(f"expected {op!r}")
        return self.advance()

    def accept_operator(self, *ops: str) -> Token | None:
        if self.at_operator(*ops):
            return self.advance()
        return None

    def expect_ident(self, what: str) -> str:
        token = self.peek()
        if token.type is not TokenType.IDENT:
            raise self.error(f"expected {what}")
        self.advance()
        return token.text

    # -------------------------------------------------------------- #
    # statements
    # -------------------------------------------------------------- #

    def parse_statement(self) -> Statement:
        if self.at_keyword("explain"):
            span = self.span_here()
            self.advance()
            analyze = self.accept_keyword("analyze")
            stmt = Explain(self.parse_bare_statement(), analyze, span=span)
        else:
            stmt = self.parse_bare_statement()
        self.accept_operator(";")
        if self.peek().type is not TokenType.EOF:
            raise self.error("unexpected trailing input")
        return stmt

    def parse_bare_statement(self) -> Statement:
        if self.at_keyword("select"):
            stmt = self.parse_select()
        elif self.at_keyword("insert"):
            stmt = self.parse_insert()
        elif self.at_keyword("create"):
            stmt = self.parse_create()
        elif self.at_keyword("drop"):
            stmt = self.parse_drop()
        elif self.at_keyword("delete"):
            stmt = self.parse_delete()
        elif self.at_keyword("update"):
            stmt = self.parse_update()
        elif self.at_keyword("analyze"):
            stmt = self.parse_analyze()
        else:
            raise self.error("expected a SQL statement")
        return stmt

    def parse_select(self) -> Select:
        span = self.span_here()
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct")
        items = self.parse_select_items()
        self.expect_keyword("from")
        tables = [self.parse_table_ref()]
        while self.accept_operator(","):
            tables.append(self.parse_table_ref())
        where = None
        if self.accept_keyword("where"):
            where = self.parse_expr()
        group_by: list[Expr] = []
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by.append(self.parse_expr())
            while self.accept_operator(","):
                group_by.append(self.parse_expr())
        having = None
        if self.accept_keyword("having"):
            having = self.parse_expr()
        order_by: list[OrderItem] = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            while True:
                item_span = self.span_here()
                expr = self.parse_expr()
                ascending = True
                if self.accept_keyword("desc"):
                    ascending = False
                else:
                    self.accept_keyword("asc")
                order_by.append(OrderItem(expr, ascending, span=item_span))
                if not self.accept_operator(","):
                    break
        limit = None
        if self.accept_keyword("limit"):
            token = self.peek()
            if token.type is not TokenType.NUMBER or not isinstance(token.value, int):
                raise self.error("LIMIT expects an integer")
            self.advance()
            limit = token.value
        return Select(
            tuple(items), tuple(tables), where,
            tuple(group_by), having, tuple(order_by), limit, distinct,
            span=span,
        )

    def parse_select_items(self) -> list[SelectItem]:
        items = []
        while True:
            item_span = self.span_here()
            if self.at_operator("*"):
                self.advance()
                items.append(SelectItem(Star(span=item_span), span=item_span))
            else:
                expr = self.parse_expr()
                alias = None
                if self.accept_keyword("as"):
                    alias = self.expect_ident("an alias name")
                elif (
                    self.peek().type is TokenType.IDENT
                    and self.peek().text.lower() not in _KEYWORDS
                ):
                    alias = self.advance().text
                items.append(SelectItem(expr, alias, span=item_span))
            if not self.accept_operator(","):
                return items

    def parse_table_ref(self) -> TableRef:
        span = self.span_here()
        name = self.expect_ident("a table name")
        alias = None
        if self.peek().type is TokenType.IDENT and self.peek().text.lower() not in _KEYWORDS:
            alias = self.advance().text
        elif self.accept_keyword("as"):
            alias = self.expect_ident("a table alias")
        return TableRef(name, alias, span=span)

    def parse_insert(self) -> Insert:
        span = self.span_here()
        self.expect_keyword("insert")
        self.expect_keyword("into")
        table = self.expect_ident("a table name")
        columns = None
        if self.at_operator("("):
            self.advance()
            columns = [self.expect_ident("a column name")]
            while self.accept_operator(","):
                columns.append(self.expect_ident("a column name"))
            self.expect_operator(")")
        self.expect_keyword("values")
        rows = [self.parse_value_row()]
        while self.accept_operator(","):
            rows.append(self.parse_value_row())
        return Insert(table, tuple(columns) if columns else None, tuple(rows), span=span)

    def parse_value_row(self) -> tuple[Expr, ...]:
        self.expect_operator("(")
        exprs = [self.parse_expr()]
        while self.accept_operator(","):
            exprs.append(self.parse_expr())
        self.expect_operator(")")
        return tuple(exprs)

    def parse_update(self) -> Update:
        span = self.span_here()
        self.expect_keyword("update")
        table = self.expect_ident("a table name")
        self.expect_keyword("set")
        assignments = [self.parse_assignment()]
        while self.accept_operator(","):
            assignments.append(self.parse_assignment())
        where = None
        if self.accept_keyword("where"):
            where = self.parse_expr()
        return Update(table, tuple(assignments), where, span=span)

    def parse_assignment(self) -> tuple[str, Expr]:
        column = self.expect_ident("a column name")
        self.expect_operator("=")
        return column, self.parse_expr()

    def parse_analyze(self) -> Analyze:
        span = self.span_here()
        self.expect_keyword("analyze")
        table = None
        if (
            self.peek().type is TokenType.IDENT
            and self.peek().text.lower() not in _KEYWORDS
        ):
            table = self.advance().text
        return Analyze(table, span=span)

    def parse_create(self) -> CreateTable | CreateIndex | CreateSpatialIndex:
        span = self.span_here()
        self.expect_keyword("create")
        if self.accept_keyword("spatial"):
            self.expect_keyword("index")
            name = self.expect_ident("an index name")
            self.expect_keyword("on")
            table = self.expect_ident("a table name")
            self.expect_operator("(")
            column = self.expect_ident("a column name")
            self.expect_operator(")")
            return CreateSpatialIndex(name, table, column, span=span)
        if self.accept_keyword("index"):
            name = self.expect_ident("an index name")
            self.expect_keyword("on")
            table = self.expect_ident("a table name")
            self.expect_operator("(")
            column = self.expect_ident("a column name")
            self.expect_operator(")")
            return CreateIndex(name, table, column, span=span)
        self.expect_keyword("table")
        table = self.expect_ident("a table name")
        self.expect_operator("(")
        columns = [self.parse_column_def()]
        while self.accept_operator(","):
            columns.append(self.parse_column_def())
        self.expect_operator(")")
        return CreateTable(table, tuple(columns), span=span)

    def parse_column_def(self) -> tuple[str, str]:
        name = self.expect_ident("a column name")
        type_name = self.expect_ident("a type name")
        # Swallow optional length like VARCHAR(40).
        if self.at_operator("("):
            self.advance()
            while not self.at_operator(")"):
                self.advance()
            self.expect_operator(")")
        return name, type_name

    def parse_drop(self) -> DropTable | DropIndex:
        span = self.span_here()
        self.expect_keyword("drop")
        if self.accept_keyword("index"):
            return DropIndex(self.expect_ident("an index name"), span=span)
        self.expect_keyword("table")
        return DropTable(self.expect_ident("a table name"), span=span)

    def parse_delete(self) -> Delete:
        span = self.span_here()
        self.expect_keyword("delete")
        self.expect_keyword("from")
        table = self.expect_ident("a table name")
        where = None
        if self.accept_keyword("where"):
            where = self.parse_expr()
        return Delete(table, where, span=span)

    # -------------------------------------------------------------- #
    # expressions, by descending precedence
    # -------------------------------------------------------------- #

    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.at_keyword("or"):
            op = self.advance()
            left = BinOp("or", left, self.parse_and(), span=self.span_of(op))
        return left

    def parse_and(self) -> Expr:
        left = self.parse_not()
        while self.at_keyword("and"):
            op = self.advance()
            left = BinOp("and", left, self.parse_not(), span=self.span_of(op))
        return left

    def parse_not(self) -> Expr:
        if self.at_keyword("not"):
            op = self.advance()
            return UnaryOp("not", self.parse_not(), span=self.span_of(op))
        return self.parse_comparison()

    def parse_comparison(self) -> Expr:
        left = self.parse_additive()
        if self.at_keyword("is"):
            is_span = self.span_of(self.advance())
            negated = self.accept_keyword("not")
            self.expect_keyword("null")
            test = FuncCall("__is_null", (left,), span=is_span)
            return UnaryOp("not", test, span=is_span) if negated else test
        if self.at_keyword("between"):
            between_span = self.span_of(self.advance())
            lo = self.parse_additive()
            self.expect_keyword("and")
            hi = self.parse_additive()
            return BinOp(
                "and",
                BinOp(">=", left, lo, span=between_span),
                BinOp("<=", left, hi, span=between_span),
                span=between_span,
            )
        negated = False
        if self.at_keyword("not"):
            self.advance()
            if not self.at_keyword("in"):
                raise self.error("expected IN after NOT")
            negated = True
        if self.at_keyword("in"):
            in_span = self.span_of(self.advance())
            self.expect_operator("(")
            if self.at_keyword("select"):
                subquery = self.parse_select()
                self.expect_operator(")")
                return InSubquery(left, subquery, negated, span=in_span)
            options = [self.parse_expr()]
            while self.accept_operator(","):
                options.append(self.parse_expr())
            self.expect_operator(")")
            test: Expr = BinOp("=", left, options[0], span=in_span)
            for option in options[1:]:
                test = BinOp("or", test, BinOp("=", left, option, span=in_span), span=in_span)
            return UnaryOp("not", test, span=in_span) if negated else test
        op_token = self.accept_operator(*_COMPARISONS)
        if op_token:
            op = "<>" if op_token.text == "!=" else op_token.text
            return BinOp(op, left, self.parse_additive(), span=self.span_of(op_token))
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while True:
            op_token = self.accept_operator("+", "-", "||")
            if not op_token:
                return left
            left = BinOp(op_token.text, left, self.parse_multiplicative(),
                         span=self.span_of(op_token))

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while True:
            op_token = self.accept_operator("*", "/")
            if not op_token:
                return left
            left = BinOp(op_token.text, left, self.parse_unary(), span=self.span_of(op_token))

    def parse_unary(self) -> Expr:
        if self.at_operator("-"):
            op = self.advance()
            return UnaryOp("-", self.parse_unary(), span=self.span_of(op))
        if self.at_operator("+"):
            self.advance()
            return self.parse_unary()
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        token = self.peek()
        span = self.span_of(token)
        if token.type is TokenType.NUMBER:
            self.advance()
            return Literal(token.value, span=span)
        if token.type is TokenType.STRING:
            self.advance()
            return Literal(token.value, span=span)
        if token.type is TokenType.PARAM:
            self.advance()
            param = Param(self.param_count, span=span)
            self.param_count += 1
            return param
        if self.at_operator("("):
            self.advance()
            if self.at_keyword("select"):
                subquery = self.parse_select()
                self.expect_operator(")")
                return Subquery(subquery, span=span)
            expr = self.parse_expr()
            self.expect_operator(")")
            return expr
        if token.type is TokenType.IDENT:
            lowered = token.text.lower()
            if lowered == "exists":
                self.advance()
                self.expect_operator("(")
                subquery = self.parse_select()
                self.expect_operator(")")
                return Exists(subquery, span=span)
            if lowered == "null":
                self.advance()
                return Literal(None, span=span)
            if lowered == "true":
                self.advance()
                return Literal(True, span=span)
            if lowered == "false":
                self.advance()
                return Literal(False, span=span)
            name = self.advance().text
            if self.at_operator("("):  # function call
                self.advance()
                args: list[Expr] = []
                if self.at_operator("*"):
                    star_span = self.span_here()
                    self.advance()
                    args.append(Star(span=star_span))
                elif not self.at_operator(")"):
                    args.append(self.parse_expr())
                    while self.accept_operator(","):
                        args.append(self.parse_expr())
                self.expect_operator(")")
                return FuncCall(name, tuple(args), span=span)
            if self.at_operator("."):
                self.advance()
                column = self.expect_ident("a column name")
                return ColumnRef(name, column, span=span)
            return ColumnRef(None, name, span=span)
        raise self.error("expected an expression")


def parse(sql: str) -> Statement:
    """Parse one SQL statement."""
    return _Parser(sql).parse_statement()


def parse_expression(sql: str) -> Expr:
    """Parse a standalone expression (used by tests and the REPL helper)."""
    parser = _Parser(sql)
    expr = parser.parse_expr()
    if parser.peek().type is not TokenType.EOF:
        raise parser.error("unexpected trailing input after expression")
    return expr
