"""SQL front end: lexer, AST, parser."""

from __future__ import annotations

from repro.db.sql import ast
from repro.db.sql.ast import Span
from repro.db.sql.lexer import Token, TokenType, tokenize
from repro.db.sql.parser import parse, parse_expression
from repro.db.sql.unparse import unparse, unparse_expression

__all__ = [
    "ast",
    "Span",
    "tokenize",
    "Token",
    "TokenType",
    "parse",
    "parse_expression",
    "unparse",
    "unparse_expression",
]
