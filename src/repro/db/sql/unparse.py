"""Render an AST back to SQL text that re-parses to the same AST.

The generator is the parser's inverse on parser-producible trees:
``parse(unparse(stmt)) == stmt`` (spans are excluded from node equality,
so positions need not survive).  The round-trip property test leans on
this to catch lexer/parser drift.

Expressions are fully parenthesized, which sidesteps precedence entirely:
the parser drops redundant parentheses without creating nodes, so the
extra grouping is invisible in the AST.  A few forms the parser
normalizes away (``BETWEEN``, ``IN`` value lists, ``!=``) naturally
unparse as their desugared equivalents.
"""

from __future__ import annotations

from repro.db.sql.ast import (
    Analyze,
    BinOp,
    ColumnRef,
    CreateIndex,
    CreateSpatialIndex,
    CreateTable,
    Delete,
    DropIndex,
    DropTable,
    Exists,
    Explain,
    Expr,
    FuncCall,
    InSubquery,
    Insert,
    Literal,
    OrderItem,
    Param,
    Select,
    SelectItem,
    Star,
    Statement,
    Subquery,
    TableRef,
    UnaryOp,
    Update,
)
from repro.errors import UnsupportedStatementError

__all__ = ["unparse", "unparse_expression"]


def _literal(value) -> str:
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, (int, float)):
        return repr(value)
    raise UnsupportedStatementError(
        f"cannot render a literal of type {type(value).__name__}"
    )


def unparse_expression(expr: Expr) -> str:
    """One expression as SQL text (the inverse of ``parse_expression``)."""
    if isinstance(expr, Literal):
        return _literal(expr.value)
    if isinstance(expr, Param):
        return "?"
    if isinstance(expr, ColumnRef):
        return f"{expr.qualifier}.{expr.name}" if expr.qualifier else expr.name
    if isinstance(expr, Star):
        return "*"
    if isinstance(expr, FuncCall):
        if expr.name == "__is_null" and len(expr.args) == 1:
            return f"({unparse_expression(expr.args[0])} IS NULL)"
        args = ", ".join(unparse_expression(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, BinOp):
        op = expr.op.upper() if expr.op in ("and", "or") else expr.op
        return f"({unparse_expression(expr.left)} {op} {unparse_expression(expr.right)})"
    if isinstance(expr, UnaryOp):
        op = "NOT" if expr.op == "not" else expr.op
        return f"({op} {unparse_expression(expr.operand)})"
    if isinstance(expr, Subquery):
        return f"({_select(expr.select)})"
    if isinstance(expr, InSubquery):
        negated = "NOT " if expr.negated else ""
        return (
            f"({unparse_expression(expr.value)} {negated}IN "
            f"({_select(expr.subquery)}))"
        )
    if isinstance(expr, Exists):
        negated = "NOT " if expr.negated else ""
        return f"{negated}EXISTS ({_select(expr.subquery)})"
    raise UnsupportedStatementError(
        f"cannot render an expression of type {type(expr).__name__}"
    )


def _select_item(item: SelectItem) -> str:
    if isinstance(item.expr, Star) and item.alias is None:
        return "*"
    text = unparse_expression(item.expr)
    return f"{text} AS {item.alias}" if item.alias else text


def _table_ref(ref: TableRef) -> str:
    return f"{ref.name} AS {ref.alias}" if ref.alias else ref.name


def _order_item(item: OrderItem) -> str:
    direction = "ASC" if item.ascending else "DESC"
    return f"{unparse_expression(item.expr)} {direction}"


def _select(stmt: Select) -> str:
    parts = ["SELECT"]
    if stmt.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_select_item(i) for i in stmt.items))
    parts.append("FROM")
    parts.append(", ".join(_table_ref(t) for t in stmt.tables))
    if stmt.where is not None:
        parts.append("WHERE " + unparse_expression(stmt.where))
    if stmt.group_by:
        parts.append("GROUP BY " + ", ".join(unparse_expression(e) for e in stmt.group_by))
    if stmt.having is not None:
        parts.append("HAVING " + unparse_expression(stmt.having))
    if stmt.order_by:
        parts.append("ORDER BY " + ", ".join(_order_item(i) for i in stmt.order_by))
    if stmt.limit is not None:
        parts.append(f"LIMIT {stmt.limit}")
    return " ".join(parts)


def unparse(stmt: Statement) -> str:
    """One statement as SQL text; ``parse(unparse(stmt)) == stmt``."""
    if isinstance(stmt, Select):
        return _select(stmt)
    if isinstance(stmt, Insert):
        columns = f" ({', '.join(stmt.columns)})" if stmt.columns else ""
        rows = ", ".join(
            "(" + ", ".join(unparse_expression(e) for e in row) + ")"
            for row in stmt.rows
        )
        return f"INSERT INTO {stmt.table}{columns} VALUES {rows}"
    if isinstance(stmt, CreateTable):
        columns = ", ".join(f"{name} {type_name}" for name, type_name in stmt.columns)
        return f"CREATE TABLE {stmt.table} ({columns})"
    if isinstance(stmt, DropTable):
        return f"DROP TABLE {stmt.table}"
    if isinstance(stmt, Delete):
        where = f" WHERE {unparse_expression(stmt.where)}" if stmt.where is not None else ""
        return f"DELETE FROM {stmt.table}{where}"
    if isinstance(stmt, Update):
        assignments = ", ".join(
            f"{column} = {unparse_expression(value)}"
            for column, value in stmt.assignments
        )
        where = f" WHERE {unparse_expression(stmt.where)}" if stmt.where is not None else ""
        return f"UPDATE {stmt.table} SET {assignments}{where}"
    if isinstance(stmt, CreateIndex):
        return f"CREATE INDEX {stmt.name} ON {stmt.table} ({stmt.column})"
    if isinstance(stmt, DropIndex):
        return f"DROP INDEX {stmt.name}"
    if isinstance(stmt, CreateSpatialIndex):
        return f"CREATE SPATIAL INDEX {stmt.name} ON {stmt.table} ({stmt.column})"
    if isinstance(stmt, Analyze):
        return f"ANALYZE {stmt.table}" if stmt.table else "ANALYZE"
    if isinstance(stmt, Explain):
        analyze = "ANALYZE " if stmt.analyze else ""
        return f"EXPLAIN {analyze}{unparse(stmt.statement)}"
    raise UnsupportedStatementError(
        f"cannot render a statement of type {type(stmt).__name__}"
    )
