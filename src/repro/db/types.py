"""SQL value types of the extensible relational engine.

The engine supports the small set of types the QBISM schema needs: numbers,
strings, booleans, and — the extensibility hook the whole paper rests on —
the LONGFIELD type.  A LONGFIELD column stores a
:class:`~repro.storage.lfm.LongField` handle; the payload itself lives on
the block device and is only touched when a user-defined function reads it.
Transient LONGFIELD values produced by functions (e.g. the result of
``extractVoxels``) are raw ``bytes`` that never hit the disk, matching the
paper's data flow where extraction results stream to the network.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import SqlTypeError
from repro.storage.lfm import LongField

__all__ = ["SqlType", "coerce_value", "type_of_value", "NULL"]

#: SQL NULL is represented by Python None
NULL = None


class SqlType(enum.Enum):
    """Column types supported by the engine."""

    INTEGER = "integer"
    REAL = "real"
    TEXT = "text"
    BOOLEAN = "boolean"
    LONGFIELD = "longfield"

    @classmethod
    def from_name(cls, name: str) -> "SqlType":
        """Parse a type name from SQL DDL (several familiar aliases accepted)."""
        aliases = {
            "int": cls.INTEGER,
            "integer": cls.INTEGER,
            "bigint": cls.INTEGER,
            "smallint": cls.INTEGER,
            "real": cls.REAL,
            "float": cls.REAL,
            "double": cls.REAL,
            "text": cls.TEXT,
            "varchar": cls.TEXT,
            "char": cls.TEXT,
            "string": cls.TEXT,
            "date": cls.TEXT,
            "boolean": cls.BOOLEAN,
            "bool": cls.BOOLEAN,
            "longfield": cls.LONGFIELD,
            "long": cls.LONGFIELD,
            "blob": cls.LONGFIELD,
        }
        try:
            return aliases[name.lower()]
        except KeyError:
            raise SqlTypeError(f"unknown SQL type {name!r}") from None


def coerce_value(value: Any, sql_type: SqlType) -> Any:
    """Validate/convert a Python value for storage in a column of ``sql_type``.

    ``None`` (SQL NULL) is accepted in every column.
    """
    if value is NULL:
        return NULL
    if sql_type is SqlType.INTEGER:
        if isinstance(value, bool):
            raise SqlTypeError("cannot store a boolean in an INTEGER column")
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise SqlTypeError(f"cannot store {value!r} in an INTEGER column")
    if sql_type is SqlType.REAL:
        if isinstance(value, bool):
            raise SqlTypeError("cannot store a boolean in a REAL column")
        if isinstance(value, (int, float)):
            return float(value)
        raise SqlTypeError(f"cannot store {value!r} in a REAL column")
    if sql_type is SqlType.TEXT:
        if isinstance(value, str):
            return value
        raise SqlTypeError(f"cannot store {value!r} in a TEXT column")
    if sql_type is SqlType.BOOLEAN:
        if isinstance(value, bool):
            return value
        raise SqlTypeError(f"cannot store {value!r} in a BOOLEAN column")
    if sql_type is SqlType.LONGFIELD:
        if isinstance(value, (LongField, bytes)):
            return value
        raise SqlTypeError(
            f"LONGFIELD columns store LongField handles or bytes, got {type(value).__name__}"
        )
    raise SqlTypeError(f"unhandled SQL type {sql_type}")  # pragma: no cover


def type_of_value(value: Any) -> SqlType | None:
    """Infer the SQL type of a runtime value (None for NULL)."""
    if value is NULL:
        return None
    if isinstance(value, bool):
        return SqlType.BOOLEAN
    if isinstance(value, int):
        return SqlType.INTEGER
    if isinstance(value, float):
        return SqlType.REAL
    if isinstance(value, str):
        return SqlType.TEXT
    if isinstance(value, (LongField, bytes)):
        return SqlType.LONGFIELD
    raise SqlTypeError(f"value {value!r} has no SQL type")
