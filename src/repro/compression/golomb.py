"""Golomb and Rice codes for geometrically distributed integers.

The paper *rules these out* for REGION deltas ("we should rule out all the
compression methods that are tailored for geometric distributions, such as
the 'infinite Huffman codes' method"), because the measured delta-length
distribution is a power law.  They are implemented here so the codec
ablation benchmark can verify that reasoning empirically.

Golomb's code with parameter ``m`` writes ``q = (x - 1) // m`` in unary
followed by ``r = (x - 1) % m`` in truncated binary; it is the optimal
prefix code for a geometric source with success probability tuned to ``m``
(Golomb 1966, Gallager & Van Voorhis 1975).  Rice codes are the ``m = 2^k``
special case.

All encoders work on positive integers (``x >= 1``).
"""

from __future__ import annotations

from repro.errors import ValidationError

import numpy as np

from repro.compression.bitio import BitReader, BitWriter

__all__ = [
    "golomb_code_length",
    "golomb_encode_array",
    "golomb_decode_array",
    "optimal_golomb_parameter",
]

_UNARY_CHUNK = 48  # unary prefixes are emitted in chunks of at most this many bits


def _truncated_binary_params(m: int) -> tuple[int, int]:
    """Bits ``b`` and threshold for truncated binary coding of residues mod m."""
    b = (m - 1).bit_length() if m > 1 else 0
    threshold = (1 << b) - m  # residues below this use b - 1 bits
    return b, threshold


def golomb_code_length(values: np.ndarray, m: int) -> np.ndarray:
    """Bits the Golomb(m) code spends on each positive value."""
    values = np.ascontiguousarray(values, dtype=np.int64)
    if values.size and values.min() < 1:
        raise ValidationError("Golomb codes here are defined for integers >= 1")
    if m < 1:
        raise ValidationError("Golomb parameter m must be >= 1")
    x = values - 1
    q = x // m
    if m == 1:
        return q + 1
    b, threshold = _truncated_binary_params(m)
    r = x - q * m
    r_bits = np.where(r < threshold, b - 1, b)
    return q + 1 + r_bits


def golomb_encode_array(values: np.ndarray, m: int, writer: BitWriter) -> None:
    """Append Golomb(m) codes of ``values`` to ``writer``."""
    values = np.ascontiguousarray(values, dtype=np.int64)
    if values.size == 0:
        return
    if values.min() < 1:
        raise ValidationError("Golomb codes here are defined for integers >= 1")
    if m < 1:
        raise ValidationError("Golomb parameter m must be >= 1")
    x = values - 1
    q = x // m
    b, threshold = _truncated_binary_params(m)
    r = x - q * m
    small = r < threshold
    r_vals = np.where(small, r, r + threshold)
    r_bits = np.where(small, max(b - 1, 0), b)
    max_q = int(q.max())
    if max_q >= _UNARY_CHUNK:
        # Rare pathological case (m far too small for the data): fall back to
        # a per-value loop that can emit arbitrarily long unary prefixes.
        for xi, qi, rv, rb in zip(values.tolist(), q.tolist(), r_vals.tolist(), r_bits.tolist()):
            del xi
            remaining = qi + 1
            while remaining > _UNARY_CHUNK:
                writer.write(0, _UNARY_CHUNK)
                remaining -= _UNARY_CHUNK
            writer.write(1, remaining)  # qi zeros then the terminating 1
            if rb:
                writer.write(rv, rb)
        return
    # Unary prefix of q zeros + terminating 1 is the value 1 in q + 1 bits.
    if m == 1:
        writer.write_array(np.ones(values.size, dtype=np.int64), q + 1)
        return
    slots = np.where(r_bits > 0, 2, 1)
    positions = np.concatenate(([0], np.cumsum(slots)[:-1]))
    total = int(slots.sum())
    merged_vals = np.empty(total, dtype=np.int64)
    merged_bits = np.empty(total, dtype=np.int64)
    merged_vals[positions] = 1
    merged_bits[positions] = q + 1
    has_r = r_bits > 0
    r_positions = positions[has_r] + 1
    merged_vals[r_positions] = r_vals[has_r]
    merged_bits[r_positions] = r_bits[has_r]
    writer.write_array(merged_vals, merged_bits)


def golomb_decode_array(reader: BitReader, m: int, count: int) -> np.ndarray:
    """Read ``count`` Golomb(m) codes from ``reader``."""
    if m < 1:
        raise ValidationError("Golomb parameter m must be >= 1")
    b, threshold = _truncated_binary_params(m)
    out = np.empty(count, dtype=np.int64)
    for i in range(count):
        q = reader.read_unary()
        if m == 1:
            out[i] = q + 1
            continue
        if b == 0:
            r = 0
        else:
            r = reader.read(b - 1) if b > 1 else 0
            if r >= threshold or b == 1:
                r = (r << 1) | reader.read(1)
                r -= threshold
        out[i] = q * m + r + 1
    return out


def optimal_golomb_parameter(values: np.ndarray) -> int:
    """The classic m ~ -1 / log2(p) choice for a geometric source.

    Uses the mean of the data: for a geometric distribution with mean ``mu``
    the optimal parameter is approximately ``0.69 * mu`` (Gallager & Van
    Voorhis).  Returns at least 1.
    """
    values = np.ascontiguousarray(values, dtype=np.int64)
    if values.size == 0:
        return 1
    return max(1, int(round(0.69 * float(values.mean()))))
