"""Elias universal codes (Elias, IEEE-IT 1975).

The paper selects the Elias gamma code to compress REGION run/gap lengths
because the measured length distribution is a power law (EQ 1), not
geometric: gamma spends ``2 * floor(log2 x) + 1`` bits on ``x``, which is
within a constant factor of optimal for power-law sources.  The delta code
is included as well (asymptotically better for very large values); both are
exercised by the codec ablation benchmark.

All encoders work on positive integers (``x >= 1``).
"""

from __future__ import annotations

from repro.errors import ValidationError

import numpy as np

from repro.compression.bitio import BitReader, BitWriter

__all__ = [
    "gamma_code_length",
    "encode_gamma",
    "decode_gamma",
    "gamma_encode_array",
    "gamma_decode_array",
    "delta_code_length",
    "delta_encode_array",
    "delta_decode_array",
]


def _floor_log2(values: np.ndarray) -> np.ndarray:
    result = np.zeros(values.shape, dtype=np.int64)
    v = values.astype(np.int64).copy()
    shift = 32
    while shift:
        big = v >= (np.int64(1) << shift)
        result[big] += shift
        v = np.where(big, v >> shift, v)
        shift >>= 1
    return result


def _check_positive(values: np.ndarray) -> np.ndarray:
    values = np.ascontiguousarray(values, dtype=np.int64)
    if values.size and values.min() < 1:
        raise ValidationError("Elias codes are defined for integers >= 1")
    return values


def gamma_code_length(values: np.ndarray) -> np.ndarray:
    """Bits the gamma code spends on each value: ``2 * floor(log2 x) + 1``."""
    values = _check_positive(values)
    return 2 * _floor_log2(values) + 1


def gamma_encode_array(values: np.ndarray, writer: BitWriter) -> None:
    """Append the gamma codes of ``values`` to ``writer``.

    The gamma code of ``x`` is ``floor(log2 x)`` zero bits, then the binary
    representation of ``x`` (whose leading bit is the terminating 1); that
    is exactly ``x`` written in ``2 * floor(log2 x) + 1`` bits.  Values up
    to 2^30 take the vectorized bulk path; larger values (codes beyond one
    62-bit write) are emitted piecewise.
    """
    values = _check_positive(values)
    if values.size == 0:
        return
    if values.max() < (1 << 31):
        writer.write_array(values, gamma_code_length(values))
        return
    for x in values.tolist():
        level = x.bit_length() - 1
        zeros = level
        while zeros > 0:
            chunk = min(zeros, 62)
            writer.write(0, chunk)
            zeros -= chunk
        writer.write(1, 1)
        if level:
            writer.write(x - (1 << level), level)


def gamma_decode_array(reader: BitReader, count: int) -> np.ndarray:
    """Read ``count`` gamma codes from ``reader``."""
    bits = reader.bits
    out = np.empty(count, dtype=np.int64)
    pos = reader.pos
    powers = 1 << np.arange(62, dtype=np.int64)[::-1]
    for i in range(count):
        one_pos = reader.next_one_position()
        level = one_pos - pos  # floor(log2 x): number of leading zeros
        end = one_pos + level + 1
        if end > bits.size:
            raise ValidationError("bit stream exhausted while decoding gamma code")
        if level == 0:
            out[i] = 1
        else:
            chunk = bits[one_pos + 1:end].astype(np.int64)
            out[i] = (np.int64(1) << level) | int(chunk @ powers[-level:])
        pos = end
        reader.pos = pos
    return out


def encode_gamma(value: int) -> bytes:
    """Scalar convenience: the gamma code of one value, zero-padded to bytes."""
    writer = BitWriter()
    gamma_encode_array(np.asarray([value]), writer)
    return writer.getvalue()


def decode_gamma(data: bytes) -> int:
    """Scalar convenience: decode one gamma code from the head of ``data``."""
    return int(gamma_decode_array(BitReader(data), 1)[0])


def delta_code_length(values: np.ndarray) -> np.ndarray:
    """Bits the Elias delta code spends on each value."""
    values = _check_positive(values)
    level = _floor_log2(values)
    return level + gamma_code_length(level + 1)


def delta_encode_array(values: np.ndarray, writer: BitWriter) -> None:
    """Append the Elias delta codes of ``values`` to ``writer``.

    Delta encodes ``floor(log2 x) + 1`` in gamma, then the remaining
    ``floor(log2 x)`` bits of ``x`` (without its leading 1).  Prefix and
    tail must interleave per value, so both are scattered into one merged
    code array before a single :meth:`BitWriter.write_array` call.
    """
    values = _check_positive(values)
    if values.size == 0:
        return
    level = _floor_log2(values)
    prefix_vals = level + 1
    prefix_bits = gamma_code_length(prefix_vals)
    slots = np.where(level > 0, 2, 1)
    positions = np.concatenate(([0], np.cumsum(slots)[:-1]))
    total = int(slots.sum())
    merged_vals = np.empty(total, dtype=np.int64)
    merged_bits = np.empty(total, dtype=np.int64)
    merged_vals[positions] = prefix_vals
    merged_bits[positions] = prefix_bits
    has_tail = level > 0
    tail_positions = positions[has_tail] + 1
    merged_vals[tail_positions] = values[has_tail] & ((np.int64(1) << level[has_tail]) - 1)
    merged_bits[tail_positions] = level[has_tail]
    writer.write_array(merged_vals, merged_bits)


def delta_decode_array(reader: BitReader, count: int) -> np.ndarray:
    """Read ``count`` Elias delta codes from ``reader``."""
    out = np.empty(count, dtype=np.int64)
    powers = 1 << np.arange(62, dtype=np.int64)[::-1]
    bits = reader.bits
    for i in range(count):
        level = int(gamma_decode_array(reader, 1)[0]) - 1
        if level == 0:
            out[i] = 1
        else:
            end = reader.pos + level
            if end > bits.size:
                raise ValidationError("bit stream exhausted while decoding delta code")
            chunk = bits[reader.pos:end].astype(np.int64)
            out[i] = (np.int64(1) << level) | int(chunk @ powers[-level:])
            reader.pos = end
    return out
