"""Variable-length / fixed-increment codes (Severance 1983).

The second family of codes the paper's §4.2 considers and rejects for
REGION deltas.  A value is split into groups of ``k`` bits; each group is
preceded by a continuation bit (1 = more groups follow), so every value
costs a multiple of ``k + 1`` bits.  ``k = 7`` is the familiar LEB128 /
varint byte code.

All encoders work on positive integers (``x >= 1``); ``x - 1`` is coded so
that 1 gets the shortest code.
"""

from __future__ import annotations

from repro.errors import ValidationError

import numpy as np

from repro.compression.bitio import BitReader, BitWriter

__all__ = ["varlen_code_length", "varlen_encode_array", "varlen_decode_array"]


def _group_counts(values: np.ndarray, k: int) -> np.ndarray:
    """Number of k-bit groups needed for each (x - 1) value."""
    x = values - 1
    bits = np.maximum(1, _bit_length(x))
    return (bits + k - 1) // k


def _bit_length(values: np.ndarray) -> np.ndarray:
    result = np.zeros(values.shape, dtype=np.int64)
    v = values.copy()
    shift = 32
    while shift:
        big = v >= (np.int64(1) << shift)
        result[big] += shift
        v = np.where(big, v >> shift, v)
        shift >>= 1
    # values that are still >= 1 contribute one final bit
    result += (v > 0).astype(np.int64)
    return result


def _check(values: np.ndarray, k: int) -> np.ndarray:
    values = np.ascontiguousarray(values, dtype=np.int64)
    if values.size and values.min() < 1:
        raise ValidationError("varlen codes here are defined for integers >= 1")
    if not 1 <= k <= 32:
        raise ValidationError("group width k must be in [1, 32]")
    return values


def varlen_code_length(values: np.ndarray, k: int) -> np.ndarray:
    """Bits spent on each value: ``groups * (k + 1)``."""
    values = _check(values, k)
    return _group_counts(values, k) * (k + 1)


def varlen_encode_array(values: np.ndarray, k: int, writer: BitWriter) -> None:
    """Append fixed-increment codes of ``values`` to ``writer``.

    Groups are emitted most-significant first; the continuation bit leads
    each group (1 while more groups follow, 0 on the last).
    """
    values = _check(values, k)
    if values.size == 0:
        return
    x = values - 1
    groups = _group_counts(values, k)
    total = int(groups.sum())
    merged_vals = np.empty(total, dtype=np.int64)
    positions = np.concatenate(([0], np.cumsum(groups)[:-1]))
    mask = (np.int64(1) << k) - 1
    max_groups = int(groups.max())
    for j in range(max_groups):
        live = groups > j
        shift = (groups[live] - 1 - j) * k
        group_val = (x[live] >> shift) & mask
        cont = (j < groups[live] - 1).astype(np.int64)
        merged_vals[positions[live] + j] = (cont << k) | group_val
    writer.write_array(merged_vals, k + 1)


def varlen_decode_array(reader: BitReader, k: int, count: int) -> np.ndarray:
    """Read ``count`` fixed-increment codes from ``reader``."""
    if not 1 <= k <= 32:
        raise ValidationError("group width k must be in [1, 32]")
    out = np.empty(count, dtype=np.int64)
    for i in range(count):
        x = 0
        while True:
            group = reader.read(k + 1)
            x = (x << k) | (group & ((1 << k) - 1))
            if not group >> k:
                break
        out[i] = x + 1
    return out
