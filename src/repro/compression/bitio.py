"""Bit-granular I/O used by the integer codes.

:class:`BitWriter` batches ``(value, nbits)`` pairs and packs them in one
vectorized pass (a loop over *bit positions within a code*, never over the
codes themselves), so encoding a REGION with hundreds of thousands of runs
stays fast.  :class:`BitReader` supports both scalar reads and access to the
raw bit array for vectorized decoders.

Bit order is MSB-first within each byte, and codes are packed back to back
with no padding except zero bits at the very end of the stream.
"""

from __future__ import annotations

from repro.errors import ValidationError

import numpy as np

__all__ = ["BitWriter", "BitReader"]

_MAX_CODE_BITS = 62


class BitWriter:
    """Accumulates variable-length codes and packs them into bytes."""

    def __init__(self) -> None:
        self._values: list[np.ndarray] = []
        self._nbits: list[np.ndarray] = []
        self._total_bits = 0

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""
        return self._total_bits

    def write(self, value: int, nbits: int) -> None:
        """Append the low ``nbits`` bits of ``value`` (MSB first)."""
        self.write_array(np.asarray([value], dtype=np.int64), np.asarray([nbits], dtype=np.int64))

    def write_array(self, values: np.ndarray, nbits: np.ndarray | int) -> None:
        """Append one code per element; ``nbits`` may be scalar or per-element."""
        values = np.ascontiguousarray(values, dtype=np.int64)
        if np.isscalar(nbits) or getattr(nbits, "ndim", 1) == 0:
            nbits = np.full(values.shape, int(nbits), dtype=np.int64)
        else:
            nbits = np.ascontiguousarray(nbits, dtype=np.int64)
        if values.shape != nbits.shape:
            raise ValidationError("values and nbits must have the same shape")
        if values.size == 0:
            return
        if nbits.min() < 1 or nbits.max() > _MAX_CODE_BITS:
            raise ValidationError(f"code lengths must be in [1, {_MAX_CODE_BITS}]")
        if values.min() < 0:
            raise ValidationError("codes must be non-negative")
        self._values.append(values)
        self._nbits.append(nbits)
        self._total_bits += int(nbits.sum())

    def getvalue(self) -> bytes:
        """Pack everything written so far into a byte string."""
        if not self._values:
            return b""
        values = np.concatenate(self._values)
        nbits = np.concatenate(self._nbits)
        offsets = np.concatenate(([0], np.cumsum(nbits)[:-1]))
        total_bits = self._total_bits
        buf = np.zeros((total_bits + 7) // 8, dtype=np.uint8)
        max_len = int(nbits.max())
        for j in range(max_len):
            live = nbits > j
            if not live.any():
                break
            v = values[live]
            n = nbits[live]
            bit = ((v >> (n - 1 - j)) & 1).astype(np.uint8)
            pos = offsets[live] + j
            byte_idx = pos >> 3
            shift = (7 - (pos & 7)).astype(np.uint8)
            np.bitwise_or.at(buf, byte_idx, bit << shift)
        return buf.tobytes()


class BitReader:
    """Reads codes back out of a byte string produced by :class:`BitWriter`."""

    def __init__(self, data: bytes):
        self._bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
        self._ones = np.flatnonzero(self._bits)
        self.pos = 0

    @property
    def bits(self) -> np.ndarray:
        """The raw bit array (uint8 zeros and ones), for vectorized decoders."""
        return self._bits

    @property
    def remaining(self) -> int:
        """Bits left to read."""
        return int(self._bits.size - self.pos)

    def read(self, nbits: int) -> int:
        """Read ``nbits`` bits MSB-first as an unsigned integer."""
        if nbits < 0 or self.pos + nbits > self._bits.size:
            raise ValidationError("bit stream exhausted")
        value = 0
        for b in self._bits[self.pos:self.pos + nbits]:
            value = (value << 1) | int(b)
        self.pos += nbits
        return value

    def read_unary(self) -> int:
        """Count zero bits up to and including the terminating one bit.

        Returns the number of zeros (the encoded unary value); the stream
        position advances past the terminating 1.
        """
        k = np.searchsorted(self._ones, self.pos)
        if k >= self._ones.size:
            raise ValidationError("bit stream exhausted while reading unary code")
        one_pos = int(self._ones[k])
        zeros = one_pos - self.pos
        self.pos = one_pos + 1
        return zeros

    def next_one_position(self) -> int:
        """Position of the next set bit at or after the cursor (no advance)."""
        k = np.searchsorted(self._ones, self.pos)
        if k >= self._ones.size:
            raise ValidationError("no further set bits in stream")
        return int(self._ones[k])
