"""Delta statistics: entropy bound (EQ 2) and power-law fit (EQ 1).

The paper treats a REGION as an alternating sequence of runs and gaps
("deltas") along the curve and (a) measures that delta lengths follow
``count = const * length^(-a)`` with ``a ~ 1.5 - 1.7`` (EQ 1), and (b) uses
the empirical entropy of the delta lengths (EQ 2) as the yardstick no code
can beat.  Both computations live here.
"""

from __future__ import annotations

from repro.errors import ValidationError

from dataclasses import dataclass

import numpy as np

from repro.regions.intervals import IntervalSet

__all__ = [
    "delta_lengths",
    "entropy_bits_per_delta",
    "entropy_bound_bytes",
    "PowerLawFit",
    "fit_power_law",
]


def delta_lengths(intervals: IntervalSet) -> np.ndarray:
    """All delta (run and interior gap) lengths of a run list, in curve order."""
    runs = intervals.run_lengths
    gaps = intervals.gap_lengths
    if runs.size == 0:
        return np.empty(0, dtype=np.int64)
    merged = np.empty(runs.size + gaps.size, dtype=np.int64)
    merged[0::2] = runs
    merged[1::2] = gaps
    return merged


def entropy_bits_per_delta(lengths: np.ndarray) -> float:
    """EQ 2: the Shannon entropy of the delta-length distribution, in bits.

    No prefix code can spend fewer bits per delta on average than this.
    """
    lengths = np.asarray(lengths)
    if lengths.size == 0:
        return 0.0
    _, counts = np.unique(lengths, return_counts=True)
    p = counts / counts.sum()
    return float(-(p * np.log2(p)).sum())


def entropy_bound_bytes(intervals: IntervalSet) -> float:
    """Total entropy lower bound for a REGION's deltas, in bytes."""
    lengths = delta_lengths(intervals)
    return entropy_bits_per_delta(lengths) * lengths.size / 8.0


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``log density = log const - a * log length``."""

    exponent: float  #: the paper's ``a``
    constant: float  #: the paper's multiplicative constant
    r_squared: float  #: goodness of the linear fit in log-log space
    n_points: int  #: points (bins or distinct lengths) entering the fit

    def predicted_count(self, length: float) -> float:
        """EQ 1 evaluated at ``length`` with the fitted parameters."""
        return self.constant * length ** (-self.exponent)


def fit_power_law(lengths: np.ndarray, min_points: int = 3, binned: bool = True,
                  n_bins: int = 24) -> PowerLawFit:
    """Fit EQ 1 to a sample of delta lengths.

    With ``binned`` (the default), counts are accumulated in logarithmically
    spaced bins and the regression runs on the per-unit-length *density* —
    the standard estimator for power-law tails, which keeps the sparse tail
    (many lengths seen once) from flattening the slope.  ``binned=False``
    regresses on the raw per-length histogram instead.

    Healthy brain REGIONs yield exponents in the paper's ~1.5-1.7 band with
    near-perfect log-log linearity.
    """
    lengths = np.asarray(lengths)
    if lengths.size == 0:
        raise ValidationError("cannot fit a power law to an empty sample")
    values, counts = np.unique(lengths, return_counts=True)
    positive = values > 0
    values, counts = values[positive], counts[positive]
    if values.size < min_points:
        raise ValidationError(
            f"need at least {min_points} distinct lengths, got {values.size}"
        )
    if binned:
        edges = np.unique(
            np.round(np.logspace(0, np.log10(values.max() + 1), n_bins)).astype(np.int64)
        )
        if edges.size >= min_points + 1:
            hist, _ = np.histogram(lengths, bins=edges)
            widths = np.diff(edges)
            centers = np.sqrt(edges[:-1].astype(np.float64) * edges[1:])
            density = hist / widths
            keep = density > 0
            if int(keep.sum()) >= min_points:
                return _loglog_fit(centers[keep], density[keep])
        # Too few distinct lengths for meaningful bins: fall through to raw.
    return _loglog_fit(values.astype(np.float64), counts.astype(np.float64))


def _loglog_fit(x: np.ndarray, y: np.ndarray) -> PowerLawFit:
    log_x = np.log(x)
    log_y = np.log(y)
    slope, intercept = np.polyfit(log_x, log_y, 1)
    predicted = slope * log_x + intercept
    residual = log_y - predicted
    total = log_y - log_y.mean()
    denom = float((total**2).sum())
    r_squared = 1.0 - float((residual**2).sum()) / denom if denom else 1.0
    return PowerLawFit(
        exponent=float(-slope),
        constant=float(np.exp(intercept)),
        r_squared=r_squared,
        n_points=int(x.size),
    )
