"""Compression: integer codes, REGION codecs, and the entropy yardstick."""

from __future__ import annotations

from repro.compression.bitio import BitReader, BitWriter
from repro.compression.elias import (
    delta_code_length,
    delta_decode_array,
    delta_encode_array,
    gamma_code_length,
    gamma_decode_array,
    gamma_encode_array,
)
from repro.compression.entropy import (
    PowerLawFit,
    delta_lengths,
    entropy_bits_per_delta,
    entropy_bound_bytes,
    fit_power_law,
)
from repro.compression.golomb import (
    golomb_code_length,
    golomb_decode_array,
    golomb_encode_array,
    optimal_golomb_parameter,
)
from repro.compression.runcodecs import (
    REGION_CODECS,
    EliasRunCodec,
    NaiveRunCodec,
    OblongOctantCodec,
    OctantCodec,
    RegionCodec,
    get_codec,
)
from repro.compression.varlen import (
    varlen_code_length,
    varlen_decode_array,
    varlen_encode_array,
)

__all__ = [
    "BitReader",
    "BitWriter",
    "gamma_code_length",
    "gamma_encode_array",
    "gamma_decode_array",
    "delta_code_length",
    "delta_encode_array",
    "delta_decode_array",
    "golomb_code_length",
    "golomb_encode_array",
    "golomb_decode_array",
    "optimal_golomb_parameter",
    "varlen_code_length",
    "varlen_encode_array",
    "varlen_decode_array",
    "delta_lengths",
    "entropy_bits_per_delta",
    "entropy_bound_bytes",
    "fit_power_law",
    "PowerLawFit",
    "RegionCodec",
    "NaiveRunCodec",
    "EliasRunCodec",
    "OctantCodec",
    "OblongOctantCodec",
    "REGION_CODECS",
    "get_codec",
]
