"""REGION disk encodings (§4.2 of the paper).

Four ways to lay a run list down in a long field:

============  ====================================================== =========
name          scheme                                                 paper size
============  ====================================================== =========
``naive``     4-byte start + 4-byte end per run                      9.50x
``elias``     Elias-gamma coded delta (run/gap) lengths              1.17x
``oblong``    4 bytes per oblong octant ``<id, rank>``               10.4x
``octant``    4 bytes per regular octant ``<id, rank>``              17.8x
============  ====================================================== =========

(sizes relative to the entropy bound, Figure 4).  Every codec encodes a
:class:`~repro.regions.intervals.IntervalSet` to bytes and decodes it back
exactly; the Figure 4 benchmark regenerates the table above from synthetic
brain REGIONs.
"""

from __future__ import annotations

import struct
from abc import ABC, abstractmethod

import numpy as np

from repro.compression.bitio import BitReader, BitWriter
from repro.compression.elias import gamma_decode_array, gamma_encode_array
from repro.errors import CodecError
from repro.regions.intervals import IntervalSet
from repro.regions.octants import (
    decompose_oblong_octants,
    decompose_octants,
    octants_to_intervals,
)

__all__ = [
    "RegionCodec",
    "NaiveRunCodec",
    "EliasRunCodec",
    "OctantCodec",
    "OblongOctantCodec",
    "REGION_CODECS",
    "get_codec",
]

_RANK_BITS = 5  # packs ranks 0..31: grids up to 2^31 curve positions per axis group
_COUNT = struct.Struct("<I")


class RegionCodec(ABC):
    """Encodes run lists to bytes and back."""

    #: registry key and on-disk identifier
    name: str = "abstract"

    @abstractmethod
    def encode(self, intervals: IntervalSet, ndim: int = 3) -> bytes:
        """Serialize a run list.  ``ndim`` matters only to octant codecs."""

    @abstractmethod
    def decode(self, data: bytes) -> IntervalSet:
        """Exact inverse of :meth:`encode`."""

    def encoded_size(self, intervals: IntervalSet, ndim: int = 3) -> int:
        """Bytes the encoding would occupy (default: encode and measure)."""
        return len(self.encode(intervals, ndim))

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NaiveRunCodec(RegionCodec):
    """The paper's "naive" scheme: starting and ending ids as 4-byte integers."""

    name = "naive"

    def encode(self, intervals: IntervalSet, ndim: int = 3) -> bytes:
        """Encode ``runs`` into bytes."""
        del ndim
        if intervals.run_count and intervals.max_index >= 1 << 32:
            raise CodecError("naive codec stores 32-bit ids; curve position too large")
        pairs = np.empty((intervals.run_count, 2), dtype="<u4")
        pairs[:, 0] = intervals.starts
        pairs[:, 1] = intervals.stops - 1  # inclusive ends, as in the paper
        return pairs.tobytes()

    def decode(self, data: bytes) -> IntervalSet:
        """Decode runs from ``data``."""
        if len(data) % 8:
            raise CodecError("naive run payload must be a multiple of 8 bytes")
        pairs = np.frombuffer(data, dtype="<u4").reshape(-1, 2).astype(np.int64)
        return IntervalSet(pairs[:, 0], pairs[:, 1] + 1)

    def encoded_size(self, intervals: IntervalSet, ndim: int = 3) -> int:
        """Size in bytes of the encoding of ``runs``, without encoding."""
        del ndim
        return 8 * intervals.run_count


class EliasRunCodec(RegionCodec):
    """The paper's "elias" scheme: gamma-coded delta lengths.

    Layout: run count (4 bytes), then gamma codes for
    ``start_0 + 1, len_0, gap_1, len_1, gap_2, ...`` — every quantity is
    >= 1 so the gamma code applies directly.
    """

    name = "elias"

    def encode(self, intervals: IntervalSet, ndim: int = 3) -> bytes:
        """Encode ``runs`` into bytes."""
        del ndim
        n = intervals.run_count
        header = _COUNT.pack(n)
        if n == 0:
            return header
        writer = BitWriter()
        seq = np.empty(2 * n, dtype=np.int64)
        seq[0] = intervals.starts[0] + 1
        seq[1::2] = intervals.run_lengths
        if n > 1:
            seq[2::2] = intervals.gap_lengths
        gamma_encode_array(seq, writer)
        return header + writer.getvalue()

    def decode(self, data: bytes) -> IntervalSet:
        """Decode runs from ``data``."""
        if len(data) < _COUNT.size:
            raise CodecError("elias run payload too short")
        (n,) = _COUNT.unpack_from(data)
        if n == 0:
            return IntervalSet.empty()
        reader = BitReader(data[_COUNT.size:])
        seq = gamma_decode_array(reader, 2 * n)
        starts = np.empty(n, dtype=np.int64)
        stops = np.empty(n, dtype=np.int64)
        # Reconstruct positions by alternating gap/run cumulative sums.
        boundaries = np.cumsum(seq)
        starts[0] = seq[0] - 1
        stops[0] = boundaries[1] - 1
        if n > 1:
            starts[1:] = boundaries[2::2] - 1
            stops[1:] = boundaries[3::2] - 1
        return IntervalSet(starts, stops)

    def encoded_size(self, intervals: IntervalSet, ndim: int = 3) -> int:
        """Size in bytes of the encoding of ``runs``, without encoding."""
        del ndim
        from repro.compression.elias import gamma_code_length

        n = intervals.run_count
        if n == 0:
            return _COUNT.size
        bits = int(gamma_code_length(np.asarray([intervals.starts[0] + 1])).sum())
        bits += int(gamma_code_length(intervals.run_lengths).sum())
        if n > 1:
            bits += int(gamma_code_length(intervals.gap_lengths).sum())
        return _COUNT.size + (bits + 7) // 8


class _OctantCodecBase(RegionCodec):
    """Common machinery for the two ``<id, rank>`` 4-byte encodings.

    Each element packs into 4 bytes as ``(id << 5) | rank``; ids that need
    more than 27 bits (grids beyond 512x512x512, exactly the paper's limit)
    raise :class:`CodecError`.
    """

    def _decompose(self, intervals: IntervalSet, ndim: int) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def encode(self, intervals: IntervalSet, ndim: int = 3) -> bytes:
        ids, ranks = self._decompose(intervals, ndim)
        if ids.size and ids.max() >= 1 << (32 - _RANK_BITS):
            raise CodecError(
                "octant ids exceed 27 bits; the 4-byte packing covers grids "
                "only up to 512x512x512"
            )
        if ids.size and ranks.max() >= 1 << _RANK_BITS:
            raise CodecError("octant rank exceeds 5 bits")
        packed = ((ids << _RANK_BITS) | ranks).astype("<u4")
        return packed.tobytes()

    def decode(self, data: bytes) -> IntervalSet:
        if len(data) % 4:
            raise CodecError("octant payload must be a multiple of 4 bytes")
        packed = np.frombuffer(data, dtype="<u4").astype(np.int64)
        ids = packed >> _RANK_BITS
        ranks = packed & ((1 << _RANK_BITS) - 1)
        return octants_to_intervals(ids, ranks)


class OctantCodec(_OctantCodecBase):
    """Regular (cubic) octants, 4 bytes each."""

    name = "octant"

    def _decompose(self, intervals: IntervalSet, ndim: int) -> tuple[np.ndarray, np.ndarray]:
        return decompose_octants(intervals, ndim, max_rank=(1 << _RANK_BITS) - 1)


class OblongOctantCodec(_OctantCodecBase):
    """Oblong octants (z-elements), 4 bytes each."""

    name = "oblong"

    def _decompose(self, intervals: IntervalSet, ndim: int) -> tuple[np.ndarray, np.ndarray]:
        del ndim
        return decompose_oblong_octants(intervals, max_rank=(1 << _RANK_BITS) - 1)


#: codec registry, keyed by the on-disk identifier
REGION_CODECS: dict[str, RegionCodec] = {
    codec.name: codec
    for codec in (NaiveRunCodec(), EliasRunCodec(), OctantCodec(), OblongOctantCodec())
}


def get_codec(name: str) -> RegionCodec:
    """Look up a codec by name, with a helpful error for typos."""
    try:
        return REGION_CODECS[name]
    except KeyError:
        known = ", ".join(sorted(REGION_CODECS))
        raise CodecError(f"unknown REGION codec {name!r}; known codecs: {known}") from None
