"""Concurrency primitives shared by the storage, db, and server layers.

The query-serving protocol (ARCHITECTURE.md) is built on one primitive: a
reader-writer lock with writer preference.  Many concurrent SELECTs share
the read side; DDL and DML take the exclusive write side.  The package
lives at the leaf of the import graph so :mod:`repro.db` and
:mod:`repro.storage` can use it without importing the server layer above
them.

Two verification hooks live beside the lock:

* :func:`guarded_by` — a no-op decorator declaring that a callable must
  only run while the named lock is held.  The declaration is enforced
  statically by ``python -m repro.analysis --concurrency`` (the QB41x
  family) and documents the discipline in the source itself.
* :mod:`repro.concurrency.lockdep` — an opt-in runtime witness recording
  every lock-acquisition edge across threads and reporting a *potential*
  deadlock on any cycle, even when no deadlock manifests.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro.concurrency import lockdep
from repro.errors import ConcurrencyError

__all__ = ["RWLock", "guarded_by", "lockdep"]


def guarded_by(*lock_names: str):
    """Declare the lock(s) a callable requires at entry (e.g. ``"_lock"``).

    Runtime no-op: the declaration is consumed by the static concurrency
    analyzer, which (a) treats the body as holding the named locks and
    (b) flags any call site that does not hold them.  Names are either an
    attribute on ``self`` (``"_lock"``), a hierarchy key from
    ARCHITECTURE.md (``"db.rwlock"``), or ``"txn"`` for a storage
    transaction scope.
    """
    def decorate(fn):
        fn.__guarded_by__ = lock_names
        return fn
    return decorate


class RWLock:
    """A writer-preferring reader-writer lock with re-entrant holders.

    Semantics, chosen for the statement-execution protocol:

    * any number of threads may hold the **read** side concurrently;
    * the **write** side is exclusive against readers and other writers;
    * a waiting writer blocks *new* readers (writer preference), so a
      stream of SELECTs cannot starve DDL — but a thread already holding
      a read lock may re-enter the read side (no self-deadlock);
    * the write holder may re-acquire both sides freely: statements
      executed inside an exclusive transaction scope nest naturally;
    * upgrading read → write is refused with :class:`ConcurrencyError`
      (two upgrading readers would deadlock each other).

    Acquisitions must nest LIFO per thread, which the ``read()`` /
    ``write()`` context managers guarantee.

    ``name`` is the lock's :mod:`~repro.concurrency.lockdep` class key
    (``"db.rwlock"`` for the database statement lock); when the witness
    is enabled every successful acquisition lands in the process-wide
    lock-order graph under that key.
    """

    def __init__(self, name: str = "rwlock") -> None:
        self.name = name
        self._cond = threading.Condition()
        self._readers = 0              # active read holds (non-writer threads)
        self._writer: int | None = None  # ident of the write-holding thread
        self._writer_depth = 0
        self._waiting_writers = 0
        self._local = threading.local()  # per-thread read re-entrancy depth

    def _read_depth(self) -> int:
        return getattr(self._local, "depth", 0)

    def _note_acquired(self, undo) -> None:
        """Feed one successful acquisition to lockdep.

        If the witness flags it (rank inversion or a cycle-closing edge),
        ``undo`` rolls the acquisition back before the error propagates,
        so the lock state stays consistent with what the caller observes.
        """
        if not lockdep.enabled():
            return
        try:
            lockdep.note_acquire(self.name, reentrant=True)
        except ConcurrencyError:
            undo()
            raise

    # ------------------------------------------------------------------ #
    # read side
    # ------------------------------------------------------------------ #

    def acquire_read(self) -> None:
        """Take a shared hold; blocks while a writer is active or waiting."""
        me = threading.get_ident()
        with self._cond:
            if self._writer == me or self._read_depth() > 0:
                # Re-entrant: the writer reads freely; an existing reader
                # may deepen its hold even past waiting writers.
                if self._writer != me:
                    self._readers += 1
                self._local.depth = self._read_depth() + 1
                return  # lockdep already saw this thread's hold
            while self._writer is not None or self._waiting_writers:
                self._cond.wait()
            self._readers += 1
            self._local.depth = 1
        self._note_acquired(self.release_read)

    def release_read(self) -> None:
        """Drop one shared hold."""
        me = threading.get_ident()
        with self._cond:
            depth = self._read_depth()
            if depth <= 0:
                raise ConcurrencyError("release_read without a matching acquire")
            self._local.depth = depth - 1
            if self._writer == me:
                return  # the writer's read holds never touched _readers
            self._readers -= 1
            if not self._readers:
                self._cond.notify_all()
        if depth == 1:
            # The thread's last shared hold: pop its lockdep entry.
            lockdep.note_release(self.name)

    # ------------------------------------------------------------------ #
    # write side
    # ------------------------------------------------------------------ #

    def acquire_write(self) -> None:
        """Take the exclusive hold; re-entrant for the current writer."""
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return  # lockdep already saw this thread's hold
            if self._read_depth() > 0:
                raise ConcurrencyError(
                    "cannot upgrade a read lock to a write lock; release "
                    "the read hold first"
                )
            self._waiting_writers += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
            finally:
                self._waiting_writers -= 1
            self._writer = me
            self._writer_depth = 1
        self._note_acquired(self.release_write)

    def release_write(self) -> None:
        """Drop one exclusive hold; wakes waiters when fully released."""
        with self._cond:
            if self._writer != threading.get_ident():
                raise ConcurrencyError("release_write by a non-writer thread")
            self._writer_depth -= 1
            fully_released = self._writer_depth == 0
            if fully_released:
                self._writer = None
                self._cond.notify_all()
        if fully_released:
            lockdep.note_release(self.name)

    # ------------------------------------------------------------------ #
    # context managers
    # ------------------------------------------------------------------ #

    @contextmanager
    def read(self):
        """Scope a shared hold."""
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        """Scope an exclusive hold."""
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    # ------------------------------------------------------------------ #

    @property
    def write_held(self) -> bool:
        """Is the *current thread* the write holder?"""
        return self._writer == threading.get_ident()

    def __repr__(self) -> str:
        return (
            f"RWLock(readers={self._readers}, writer={self._writer}, "
            f"waiting_writers={self._waiting_writers})"
        )
