"""A lockdep-style runtime lock-order sanitizer.

Linux's lockdep made one observation that this module reimplements in
~200 lines: you do not need to *hit* a deadlock to prove one is possible.
It is enough to record, per thread, the order in which lock **classes**
are acquired.  Every "acquired B while holding A" event adds the edge
``A → B`` to a process-wide graph; the first edge that closes a cycle —
even if the two orders happened minutes apart, on threads that never
contended — is reported as a potential deadlock.  The classic ABBA bug is
caught on the second leg, deterministically, without any unlucky
interleaving.

On top of cycle detection, keys may carry a **rank** mirroring the
declared lock hierarchy of ARCHITECTURE.md (:data:`DEFAULT_RANKS`):

    db.rwlock  →  wal.txn  →  cache.latch  →  cache.lock  →  wal.stats
               →  db.stats  →  db.index

Acquiring a lower-ranked (outer) key while holding a higher-ranked
(inner) one is an ordering violation the moment it happens, before any
opposite edge exists.

The witness is **opt-in**: it does nothing unless ``REPRO_LOCKDEP=1`` is
set in the environment at import time or :func:`enable` is called.  The
stress CI job and the test suite run with it on; production paths pay a
single module-global read per instrumented acquisition (and zero for
locks wrapped by :func:`instrument` while disabled, which returns the
lock unwrapped).

Violations are recorded in a process-wide list (:func:`violations`) *and*
raised — :class:`~repro.errors.LockOrderError` for rank inversions and
recursive plain-lock acquisition, :class:`~repro.errors.
PotentialDeadlockError` for cycles — so a violation inside a worker whose
exceptions are shipped to a future still fails the run via the list.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

from repro.errors import LockOrderError, PotentialDeadlockError

__all__ = [
    "DEFAULT_RANKS",
    "LockOrderViolation",
    "TrackedLock",
    "enable",
    "disable",
    "enabled",
    "instrument",
    "note_acquire",
    "note_release",
    "held_keys",
    "acquire_count",
    "edges",
    "violations",
    "reset",
    "declare_rank",
]

#: the declared lock hierarchy (lower rank = acquired first / outermost)
DEFAULT_RANKS = {
    "cluster.router": 5,
    "cluster.link": 8,
    "cluster.replica": 9,
    "db.rwlock": 10,
    "wal.txn": 20,
    "db.version": 25,
    "cache.latch": 30,
    "cache.lock": 40,
    "wal.stats": 50,
    "db.stats": 55,
    "db.index": 56,
    "obs.digest": 60,
    "obs.slo": 62,
}

_ENABLED = os.environ.get("REPRO_LOCKDEP", "") not in ("", "0")

#: guards the edge graph, rank table, and violation list — a leaf mutex
#: that is never held while acquiring any tracked lock
_GRAPH_LOCK = threading.Lock()
_RANKS: dict[str, int] = dict(DEFAULT_RANKS)
_EDGES: dict[tuple[str, str], int] = {}
_ADJACENCY: dict[str, set[str]] = {}
_VIOLATIONS: list["LockOrderViolation"] = []
_ACQUIRES: dict[str, int] = {}  # key -> total acquisitions since reset()

_HELD = threading.local()  # per-thread list of keys, in acquisition order


@dataclass(frozen=True)
class LockOrderViolation:
    """One recorded ordering problem (also raised at the offending site)."""

    kind: str                       #: ``"order"``, ``"cycle"``, or ``"recursion"``
    key: str                        #: the key being acquired
    held: tuple[str, ...]           #: keys the thread already held
    thread: str                     #: name of the acquiring thread
    cycle: tuple[str, ...] = ()     #: the closed cycle, for ``kind == "cycle"``
    message: str = field(default="", compare=False)

    def __str__(self) -> str:
        return self.message or f"{self.kind}: {self.key} while holding {self.held}"


def enable() -> None:
    """Turn the witness on (idempotent)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn the witness off; recorded edges/violations stay until :func:`reset`."""
    global _ENABLED
    _ENABLED = False


def enabled() -> bool:
    """Is the witness currently recording acquisitions?"""
    return _ENABLED


def declare_rank(key: str, rank: int) -> None:
    """Assign a hierarchy rank to a lock key (tests declare ad-hoc levels)."""
    with _GRAPH_LOCK:
        _RANKS[key] = rank


def _stack() -> list[str]:
    stack = getattr(_HELD, "stack", None)
    if stack is None:
        stack = _HELD.stack = []
    return stack


def held_keys() -> tuple[str, ...]:
    """Keys the calling thread currently holds, outermost first."""
    return tuple(_stack())


def _find_path(start: str, goal: str) -> tuple[str, ...]:
    """BFS in the edge graph; the path start→…→goal, or () if none.

    Called with ``_GRAPH_LOCK`` held.
    """
    if start == goal:
        return (start,)
    frontier = [(start,)]
    seen = {start}
    while frontier:
        path = frontier.pop(0)
        for nxt in _ADJACENCY.get(path[-1], ()):
            if nxt == goal:
                return path + (nxt,)
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(path + (nxt,))
    return ()


def _record(violation: LockOrderViolation) -> None:
    _VIOLATIONS.append(violation)


def note_acquire(key: str, reentrant: bool = False) -> None:
    """Record that the calling thread acquired the lock class ``key``.

    Call *after* the underlying acquisition succeeds.  Raises on a rank
    inversion, a recursive non-reentrant acquisition, or an edge that
    closes a cycle; callers that cannot tolerate an exception mid-
    protocol must release the underlying lock before re-raising (see
    :class:`TrackedLock`).
    """
    if not _ENABLED:
        return
    with _GRAPH_LOCK:
        _ACQUIRES[key] = _ACQUIRES.get(key, 0) + 1
    stack = _stack()
    me = threading.current_thread().name
    if key in stack:
        if not reentrant:
            # Not pushed: the caller unwinds the underlying acquisition.
            with _GRAPH_LOCK:
                violation = LockOrderViolation(
                    kind="recursion", key=key, held=tuple(stack), thread=me,
                    message=(f"recursive acquisition of non-reentrant lock "
                             f"class {key!r} on thread {me}"),
                )
                _record(violation)
            raise LockOrderError(str(violation))
        stack.append(key)
        return
    error: Exception | None = None
    with _GRAPH_LOCK:
        for holder in dict.fromkeys(stack):  # unique, order-preserving
            edge = (holder, key)
            if edge in _EDGES:
                _EDGES[edge] += 1
                continue
            bad_edge = False
            rank_held = _RANKS.get(holder)
            rank_new = _RANKS.get(key)
            if (rank_held is not None and rank_new is not None
                    and rank_held > rank_new):
                bad_edge = True
                violation = LockOrderViolation(
                    kind="order", key=key, held=tuple(stack), thread=me,
                    message=(
                        f"lock-order violation on thread {me}: acquired "
                        f"{key!r} (rank {rank_new}) while holding {holder!r} "
                        f"(rank {rank_held}); the declared hierarchy is "
                        + " -> ".join(sorted(_RANKS, key=_RANKS.get))
                    ),
                )
                _record(violation)
                if error is None:
                    error = LockOrderError(str(violation))
            # A path key ~> holder plus this new edge holder -> key is a
            # cycle: both orders have now been observed.
            path = () if bad_edge else _find_path(key, holder)
            if path:
                bad_edge = True
                violation = LockOrderViolation(
                    kind="cycle", key=key, held=tuple(stack), thread=me,
                    cycle=path + (key,),
                    message=(
                        f"potential deadlock on thread {me}: acquiring "
                        f"{key!r} while holding {holder!r} closes the cycle "
                        + " -> ".join(path + (key,))
                    ),
                )
                _record(violation)
                if not isinstance(error, PotentialDeadlockError):
                    error = PotentialDeadlockError(str(violation))
            if not bad_edge:
                # Violating edges stay out of the graph: the caller rolls
                # the acquisition back, so the order was never really
                # established — and every later occurrence raises again
                # instead of passing as a "known" edge.
                _EDGES[edge] = 1
                _ADJACENCY.setdefault(holder, set()).add(key)
    if error is not None:
        # Not pushed: the caller unwinds the underlying acquisition.
        raise error
    stack.append(key)


def note_release(key: str) -> None:
    """Record that the calling thread released one hold of ``key``."""
    if not _ENABLED:
        return
    stack = _stack()
    # Remove the innermost hold; tolerate enabling mid-stream (a release
    # of a lock acquired before enable() finds no entry).
    for i in range(len(stack) - 1, -1, -1):
        if stack[i] == key:
            del stack[i]
            return


def acquire_count(key: str) -> int:
    """Total recorded acquisitions of ``key`` since the last :func:`reset`.

    Counts every :func:`note_acquire` call (re-entrant holds included),
    across all threads.  Tests use the delta around a critical section to
    assert a lock is *not* taken on a hot path — e.g. that a pinned-
    snapshot SELECT performs zero ``db.rwlock`` acquisitions.
    """
    with _GRAPH_LOCK:
        return _ACQUIRES.get(key, 0)


def edges() -> dict[tuple[str, str], int]:
    """A snapshot of the acquisition-order graph (edge → observation count)."""
    with _GRAPH_LOCK:
        return dict(_EDGES)


def violations() -> list[LockOrderViolation]:
    """Every violation recorded since the last :func:`reset`."""
    with _GRAPH_LOCK:
        return list(_VIOLATIONS)


def reset() -> None:
    """Clear the edge graph, violations, ad-hoc ranks, and this thread's stack."""
    with _GRAPH_LOCK:
        _EDGES.clear()
        _ADJACENCY.clear()
        _VIOLATIONS.clear()
        _ACQUIRES.clear()
        _RANKS.clear()
        _RANKS.update(DEFAULT_RANKS)
    _HELD.stack = []


class TrackedLock:
    """A mutex wrapper feeding acquisitions to the lockdep graph.

    Wraps a ``threading.Lock`` / ``RLock`` (anything with ``acquire`` /
    ``release``).  If :func:`note_acquire` raises, the underlying lock is
    released first so the protocol stays consistent — the exception then
    propagates to the caller, whose ``with`` block never runs.
    """

    __slots__ = ("_lock", "key", "reentrant")

    def __init__(self, lock, key: str, reentrant: bool = False):
        self._lock = lock
        self.key = key
        self.reentrant = reentrant

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Acquire the wrapped lock, then record the edge."""
        got = self._lock.acquire(blocking, timeout)
        if got:
            try:
                note_acquire(self.key, reentrant=self.reentrant)
            # Cleanup-and-reraise: whatever the witness throws, the caller
            # must not be left holding an unrecorded lock.
            except BaseException:  # qblint: disable=no-broad-except
                self._lock.release()
                raise
        return got

    def release(self) -> None:
        """Release the wrapped lock and pop it from this thread's stack."""
        note_release(self.key)
        self._lock.release()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def locked(self) -> bool:
        """Passthrough of the wrapped lock's ``locked()``."""
        return self._lock.locked()

    def __repr__(self) -> str:
        return f"TrackedLock({self.key!r}, {self._lock!r})"


def instrument(lock, key: str, reentrant: bool = False):
    """Wrap ``lock`` for lockdep tracking — if the witness is enabled.

    Called at lock construction time.  While lockdep is disabled this
    returns ``lock`` itself, so uninstrumented processes pay nothing;
    objects constructed after :func:`enable` get tracked locks.
    """
    if not _ENABLED:
        return lock
    return TrackedLock(lock, key, reentrant=reentrant)
