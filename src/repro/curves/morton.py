"""Vectorized n-dimensional Z-order (Morton / Peano / bit-shuffling) curve.

The z-id of a voxel is obtained by interleaving the bits of its coordinates
(§4 of the paper): for the 2-D example of Figure 2, a voxel with coordinates
``x = x1 x0`` and ``y = y1 y0`` has ``z-id = x1 y1 x0 y0``, i.e. axis 0 is
the most significant axis within every bit group.  The same layout is used
for any dimensionality.

QBISM implements Z order as the baseline against which the Hilbert curve is
compared: it is cheaper to compute but clusters space less well, yielding
roughly 27% more runs per REGION (§4.1) and correspondingly more disk I/O
(Table 4).
"""

from __future__ import annotations

import numpy as np

from repro.curves.base import SpaceFillingCurve

__all__ = ["MortonCurve"]


def _spread_bits(values: np.ndarray, ndim: int, bits: int) -> np.ndarray:
    """Insert ``ndim - 1`` zero bits between consecutive bits of each value."""
    if ndim == 1:
        return values.copy()
    result = np.zeros_like(values)
    for q in range(bits):
        result |= ((values >> q) & 1) << (q * ndim)
    return result


def _compact_bits(values: np.ndarray, ndim: int, bits: int) -> np.ndarray:
    """Inverse of :func:`_spread_bits`."""
    if ndim == 1:
        return values.copy()
    result = np.zeros_like(values)
    for q in range(bits):
        result |= ((values >> (q * ndim)) & 1) << q
    return result


class MortonCurve(SpaceFillingCurve):
    """The Z-order curve on a ``2^bits`` cube in ``ndim`` dimensions."""

    name = "morton"

    def index(self, coords: np.ndarray) -> np.ndarray:
        """Map ``(x, y, z)`` coordinates to a curve index."""
        coords = self._validate_coords(coords)
        if coords.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        index = np.zeros(coords.shape[0], dtype=np.int64)
        for i in range(self.ndim):
            spread = _spread_bits(coords[:, i], self.ndim, self.bits)
            index |= spread << (self.ndim - 1 - i)
        return index

    def coords(self, index: np.ndarray) -> np.ndarray:
        """Map a curve index back to ``(x, y, z)`` coordinates."""
        index = self._validate_index(index)
        if index.shape[0] == 0:
            return np.empty((0, self.ndim), dtype=np.int64)
        coords = np.empty((index.shape[0], self.ndim), dtype=np.int64)
        for i in range(self.ndim):
            coords[:, i] = _compact_bits(index >> (self.ndim - 1 - i), self.ndim, self.bits)
        return coords
