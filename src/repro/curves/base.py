"""Grid geometry and the space-filling-curve interface.

A :class:`GridSpec` describes the regular cubic sampling grid of §3.1 of the
paper (e.g. a 128x128x128 atlas space).  A :class:`SpaceFillingCurve` is a
bijection between grid coordinates and positions on a 1-D curve; QBISM uses
it to linearize VOLUMEs (store intensities in curve order) and REGIONs
(store runs of consecutive curve positions).

All conversions are vectorized: coordinates are ``(n, ndim)`` integer arrays
and curve indices are ``(n,)`` ``int64`` arrays.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.errors import GridMismatchError, ValidationError

__all__ = ["GridSpec", "SpaceFillingCurve"]


@dataclass(frozen=True)
class GridSpec:
    """A regular grid of voxels, the sampling lattice of a scalar field.

    Parameters
    ----------
    shape:
        Number of voxels along each axis, e.g. ``(128, 128, 128)``.  Axes are
        indexed ``(x, y, z, ...)`` in that order.
    origin:
        Real-world coordinate of the center of voxel ``(0, 0, 0)``, in
        millimetres.  Only used by the medical layer for annotation.
    spacing:
        Real-world size of a voxel along each axis, in millimetres.
    """

    shape: tuple[int, ...]
    origin: tuple[float, ...] = field(default=())
    spacing: tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.shape:
            raise ValidationError("grid shape must have at least one axis")
        if any(int(s) <= 0 for s in self.shape):
            raise ValidationError(f"grid shape must be positive, got {self.shape}")
        object.__setattr__(self, "shape", tuple(int(s) for s in self.shape))
        if not self.origin:
            object.__setattr__(self, "origin", (0.0,) * self.ndim)
        if not self.spacing:
            object.__setattr__(self, "spacing", (1.0,) * self.ndim)
        if len(self.origin) != self.ndim or len(self.spacing) != self.ndim:
            raise ValidationError("origin and spacing must match the grid dimensionality")

    @property
    def ndim(self) -> int:
        """Number of spatial dimensions."""
        return len(self.shape)

    @property
    def size(self) -> int:
        """Total number of voxels in the grid."""
        return int(np.prod([int(s) for s in self.shape], dtype=object))

    @property
    def bits(self) -> int:
        """Bits per axis of the smallest enclosing power-of-two cube.

        Space-filling curves are defined on ``2^bits`` cubes; a grid that is
        not a power-of-two cube is embedded in the smallest one that contains
        it (positions outside the grid are simply never produced).
        """
        return max(int(s - 1).bit_length() for s in self.shape)

    @property
    def is_cube(self) -> bool:
        """True when all axes have equal, power-of-two extent."""
        side = self.shape[0]
        return all(s == side for s in self.shape) and side == 1 << self.bits

    def contains(self, coords: np.ndarray) -> np.ndarray:
        """Vectorized bounds test: ``coords`` is ``(n, ndim)``; returns ``(n,)`` bool."""
        coords = np.asarray(coords)
        shape = np.asarray(self.shape)
        return np.all((coords >= 0) & (coords < shape), axis=-1)

    def require_same(self, other: "GridSpec") -> None:
        """Raise :class:`GridMismatchError` unless ``other`` has the same shape."""
        if self.shape != other.shape:
            raise GridMismatchError(
                f"grids are incompatible: {self.shape} vs {other.shape}"
            )

    def world_to_voxel(self, points: np.ndarray) -> np.ndarray:
        """Convert real-world mm coordinates to (fractional) voxel coordinates."""
        points = np.asarray(points, dtype=np.float64)
        return (points - np.asarray(self.origin)) / np.asarray(self.spacing)

    def voxel_to_world(self, coords: np.ndarray) -> np.ndarray:
        """Convert voxel coordinates to real-world mm coordinates."""
        coords = np.asarray(coords, dtype=np.float64)
        return coords * np.asarray(self.spacing) + np.asarray(self.origin)


class SpaceFillingCurve(ABC):
    """A bijection between grid coordinates and 1-D curve positions.

    Subclasses implement the two directions for a whole batch of points at a
    time.  A curve instance is bound to a dimensionality and a bit depth so
    instances can be compared for compatibility (two REGIONs can only be
    intersected when their runs live on the same curve).
    """

    #: short name used in reports and codec headers, e.g. ``"hilbert"``
    name: str = "abstract"

    def __init__(self, ndim: int, bits: int):
        if ndim < 1:
            raise ValidationError("curve dimensionality must be >= 1")
        if bits < 1:
            raise ValidationError("curve bit depth must be >= 1")
        if ndim * bits > 62:
            raise ValidationError(
                f"curve index would overflow int64: ndim={ndim} bits={bits}"
            )
        self.ndim = int(ndim)
        self.bits = int(bits)

    @property
    def length(self) -> int:
        """Number of positions on the curve (``2^(ndim*bits)``)."""
        return 1 << (self.ndim * self.bits)

    @property
    def side(self) -> int:
        """Extent of the cube along each axis (``2^bits``)."""
        return 1 << self.bits

    @abstractmethod
    def index(self, coords: np.ndarray) -> np.ndarray:
        """Map ``(n, ndim)`` integer coordinates to ``(n,)`` int64 curve positions."""

    @abstractmethod
    def coords(self, index: np.ndarray) -> np.ndarray:
        """Map ``(n,)`` curve positions back to ``(n, ndim)`` int64 coordinates."""

    def index_point(self, *coords: int) -> int:
        """Scalar convenience wrapper around :meth:`index`."""
        return int(self.index(np.asarray([coords], dtype=np.int64))[0])

    def coords_point(self, index: int) -> tuple[int, ...]:
        """Scalar convenience wrapper around :meth:`coords`."""
        return tuple(int(c) for c in self.coords(np.asarray([index], dtype=np.int64))[0])

    def _validate_coords(self, coords: np.ndarray) -> np.ndarray:
        coords = np.ascontiguousarray(coords, dtype=np.int64)
        if coords.ndim != 2 or coords.shape[1] != self.ndim:
            raise ValidationError(
                f"expected (n, {self.ndim}) coordinate array, got shape {coords.shape}"
            )
        if coords.size and (coords.min() < 0 or coords.max() >= self.side):
            raise ValidationError(
                f"coordinates out of range for a {self.side}^{self.ndim} cube"
            )
        return coords

    def _validate_index(self, index: np.ndarray) -> np.ndarray:
        index = np.ascontiguousarray(index, dtype=np.int64)
        if index.ndim != 1:
            raise ValidationError(f"expected 1-D index array, got shape {index.shape}")
        if index.size and (index.min() < 0 or index.max() >= self.length):
            raise ValidationError(f"curve positions out of range [0, {self.length})")
        return index

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SpaceFillingCurve)
            and self.name == other.name
            and self.ndim == other.ndim
            and self.bits == other.bits
        )

    def __hash__(self) -> int:
        return hash((self.name, self.ndim, self.bits))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(ndim={self.ndim}, bits={self.bits})"
