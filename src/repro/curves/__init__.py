"""Space-filling curves: the k-D → 1-D mappings at the heart of QBISM's physical design."""

from __future__ import annotations

from repro.errors import ValidationError

from repro.curves.base import GridSpec, SpaceFillingCurve
from repro.curves.hilbert import HilbertCurve
from repro.curves.morton import MortonCurve
from repro.curves.rowmajor import RowMajorCurve

__all__ = [
    "GridSpec",
    "SpaceFillingCurve",
    "HilbertCurve",
    "MortonCurve",
    "RowMajorCurve",
    "curve_for_grid",
    "CURVE_CLASSES",
]

#: registry of curve implementations by short name
CURVE_CLASSES: dict[str, type[SpaceFillingCurve]] = {
    HilbertCurve.name: HilbertCurve,
    MortonCurve.name: MortonCurve,
    RowMajorCurve.name: RowMajorCurve,
}


def curve_for_grid(grid: GridSpec, name: str = "hilbert") -> SpaceFillingCurve:
    """Construct the named curve sized to cover ``grid``.

    The curve lives on the smallest power-of-two cube enclosing the grid;
    voxels outside the grid simply never appear in any REGION or VOLUME.
    """
    try:
        cls = CURVE_CLASSES[name]
    except KeyError:
        known = ", ".join(sorted(CURVE_CLASSES))
        raise ValidationError(f"unknown curve {name!r}; known curves: {known}") from None
    return cls(grid.ndim, grid.bits)
