"""Row-major (scanline) ordering.

Raw studies arrive from the scanner as a stack of 2-D slices: the *Raw
Volume* entity stores its data "in scanline order in a long field" (§3.3).
Modelling scanline order as just another :class:`SpaceFillingCurve` lets the
storage layer, run encodings, and benchmarks treat it uniformly — it is the
natural "no clustering" baseline.

The last axis varies fastest, matching C-order ``numpy`` arrays indexed
``[x, y, z]``.
"""

from __future__ import annotations

import numpy as np

from repro.curves.base import SpaceFillingCurve

__all__ = ["RowMajorCurve"]


class RowMajorCurve(SpaceFillingCurve):
    """Scanline order on a ``2^bits`` cube in ``ndim`` dimensions."""

    name = "rowmajor"

    def index(self, coords: np.ndarray) -> np.ndarray:
        """Map ``(x, y, z)`` coordinates to a curve index."""
        coords = self._validate_coords(coords)
        if coords.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        index = np.zeros(coords.shape[0], dtype=np.int64)
        for i in range(self.ndim):
            index = (index << self.bits) | coords[:, i]
        return index

    def coords(self, index: np.ndarray) -> np.ndarray:
        """Map a curve index back to ``(x, y, z)`` coordinates."""
        index = self._validate_index(index)
        if index.shape[0] == 0:
            return np.empty((0, self.ndim), dtype=np.int64)
        coords = np.empty((index.shape[0], self.ndim), dtype=np.int64)
        mask = self.side - 1
        for i in range(self.ndim - 1, -1, -1):
            coords[:, i] = index & mask
            index = index >> self.bits
        return coords
