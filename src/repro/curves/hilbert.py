"""Vectorized n-dimensional Hilbert curve.

QBISM stores VOLUMEs in Hilbert order and encodes REGIONs as runs of
consecutive Hilbert positions (§4 of the paper), because the Hilbert curve
has the best spatial-clustering properties among known space-filling curves
[Faloutsos & Roseman, PODS'89].

The implementation is John Skilling's transpose algorithm ("Programming the
Hilbert curve", AIP Conf. Proc. 707, 2004) rewritten over numpy arrays so a
whole batch of points is converted at once: the loops run over *bits*
(``<= 21`` per axis), not over points, so converting the 2M voxels of a
128^3 volume takes milliseconds.

The orientation convention matches the widely used 2-D ``xy2d`` curve (the
one illustrated in Figure 3 of the paper): on a 4x4 grid the curve starts at
``(0, 0)`` and visits ``(1, 0), (1, 1), (0, 1), (0, 2), ...``.
"""

from __future__ import annotations

import numpy as np

from repro.curves.base import SpaceFillingCurve

__all__ = ["HilbertCurve"]


def _interleave_transpose(transpose: np.ndarray, bits: int, ndim: int) -> np.ndarray:
    """Collapse the Skilling transpose form into scalar curve indices.

    ``transpose`` is ``(ndim, n)``; bit ``q`` of axis ``i`` becomes bit
    ``q * ndim + (ndim - 1 - i)`` of the index, i.e. axis 0 holds the most
    significant bit of each ``ndim``-bit group.
    """
    index = np.zeros(transpose.shape[1], dtype=np.int64)
    for q in range(bits):
        for i in range(ndim):
            bit = (transpose[i] >> q) & 1
            index |= bit << (q * ndim + (ndim - 1 - i))
    return index


def _deinterleave_index(index: np.ndarray, bits: int, ndim: int) -> np.ndarray:
    """Expand scalar curve indices into the Skilling transpose form."""
    transpose = np.zeros((ndim, index.shape[0]), dtype=np.int64)
    for q in range(bits):
        for i in range(ndim):
            bit = (index >> (q * ndim + (ndim - 1 - i))) & 1
            transpose[i] |= bit << q
    return transpose


class HilbertCurve(SpaceFillingCurve):
    """The Hilbert space-filling curve on a ``2^bits`` cube in ``ndim`` dimensions."""

    name = "hilbert"

    def index(self, coords: np.ndarray) -> np.ndarray:
        """Map ``(x, y, z)`` coordinates to a curve index."""
        coords = self._validate_coords(coords)
        if coords.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        x = np.ascontiguousarray(coords.T).copy()  # (ndim, n)
        n, b = self.ndim, self.bits
        # Inverse undo: untwist the recursive sub-cube rotations.
        q = 1 << (b - 1)
        while q > 1:
            p = q - 1
            for i in range(n):
                swap = (x[i] & q) == 0
                # Where bit q of x[i] is set: invert low bits of x[0].
                x[0] ^= np.where(swap, 0, p)
                # Elsewhere: exchange the low bits of x[0] and x[i].
                t = np.where(swap, (x[0] ^ x[i]) & p, 0)
                x[0] ^= t
                x[i] ^= t
            q >>= 1
        # Gray encode.
        for i in range(1, n):
            x[i] ^= x[i - 1]
        t = np.zeros_like(x[0])
        q = 1 << (b - 1)
        while q > 1:
            t ^= np.where((x[n - 1] & q) != 0, q - 1, 0)
            q >>= 1
        x ^= t
        return _interleave_transpose(x, b, n)

    def coords(self, index: np.ndarray) -> np.ndarray:
        """Map a curve index back to ``(x, y, z)`` coordinates."""
        index = self._validate_index(index)
        if index.shape[0] == 0:
            return np.empty((0, self.ndim), dtype=np.int64)
        n, b = self.ndim, self.bits
        x = _deinterleave_index(index, b, n)
        # Gray decode by H ^ (H/2).
        t = x[n - 1] >> 1
        for i in range(n - 1, 0, -1):
            x[i] ^= x[i - 1]
        x[0] ^= t
        # Undo excess work: re-apply the sub-cube rotations.
        q = 2
        top = 2 << (b - 1)
        while q != top:
            p = q - 1
            for i in range(n - 1, -1, -1):
                swap = (x[i] & q) == 0
                x[0] ^= np.where(swap, 0, p)
                t = np.where(swap, (x[0] ^ x[i]) & p, 0)
                x[0] ^= t
                x[i] ^= t
            q <<= 1
        return np.ascontiguousarray(x.T)
