"""Storage engine: block device, buddy allocator, Long Field Manager,
write-ahead log, and deterministic fault injection."""

from __future__ import annotations

from repro.storage.buddy import BuddyAllocator
from repro.storage.cache import PageCache
from repro.storage.device import PAGE_SIZE, BlockDevice, IOStats
from repro.storage.faults import FaultSchedule, FaultyDevice
from repro.storage.latency import LatencyDevice
from repro.storage.lfm import LongField, LongFieldManager
from repro.storage.wal import RecoveryReport, WriteAheadLog, recover_journal

__all__ = [
    "PAGE_SIZE",
    "BlockDevice",
    "IOStats",
    "BuddyAllocator",
    "PageCache",
    "LongField",
    "LongFieldManager",
    "FaultSchedule",
    "FaultyDevice",
    "LatencyDevice",
    "WriteAheadLog",
    "RecoveryReport",
    "recover_journal",
]
