"""Storage engine: block device, buddy allocator, Long Field Manager."""

from __future__ import annotations

from repro.storage.buddy import BuddyAllocator
from repro.storage.cache import PageCache
from repro.storage.device import PAGE_SIZE, BlockDevice, IOStats
from repro.storage.lfm import LongField, LongFieldManager

__all__ = [
    "PAGE_SIZE",
    "BlockDevice",
    "IOStats",
    "BuddyAllocator",
    "PageCache",
    "LongField",
    "LongFieldManager",
]
