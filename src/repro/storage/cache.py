"""An optional page-granular LRU buffer cache over a block device.

The paper's configuration is deliberately unbuffered: "the major
components did not buffer data ... Starburst's Long Field Manager performs
no buffering anyway" (§6.1), with result caching pushed up into DX
instead.  :class:`PageCache` lets us *evaluate* that choice: it serves
repeated page reads from memory and separates logical from physical I/O,
so the buffering ablation can measure what a DBMS-side buffer pool would
have bought for each query mix.

Writes are write-through (the cache never holds dirty pages), so crash
semantics match the raw device.

The cache is thread-safe.  A short internal mutex guards the LRU map and
the hit/miss counters (so ``hits + misses`` always equals the number of
logical page touches, even under concurrent readers), while a per-page
latch serializes *fills* of the same page only: two threads missing on
different pages read from the device in parallel instead of serializing
on the whole LRU.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager

import numpy as np

from repro.concurrency import lockdep
from repro.errors import StorageError
from repro.obs import metrics, trace
from repro.storage.device import BlockDevice, IOStats

__all__ = ["PageCache"]


class PageCache:
    """LRU cache of device pages; duck-compatible with :class:`BlockDevice`.

    ``stats`` counts *logical* I/O (what the workload asked for);
    ``physical`` counts what actually reached the device after cache hits
    are removed.
    """

    def __init__(self, device: BlockDevice, capacity_pages: int):
        if capacity_pages < 1:
            raise StorageError("page cache needs capacity for at least one page")
        self.device = device
        self.page_size = device.page_size
        self.capacity = device.capacity
        self.capacity_pages = capacity_pages
        self.stats = IOStats()  # logical accounting; guarded_by: _lock
        self._pages: OrderedDict[int, bytes] = OrderedDict()  # guarded_by: _lock
        self.hits = 0  # guarded_by: _lock
        self.misses = 0  # guarded_by: _lock
        #: guards ``_pages``, ``stats`` and the hit/miss counters
        self._lock = lockdep.instrument(threading.Lock(), "cache.lock")
        #: per-page fill latches: concurrent misses on *different* pages
        #: read from the device in parallel
        self._latches: dict[int, threading.Lock] = {}  # guarded_by: _lock

    @property
    def physical(self) -> IOStats:
        """The wrapped device's counters: I/O that missed the cache."""
        return self.device.stats

    # ------------------------------------------------------------------ #

    def _record_hit(self, number: int, page: bytes) -> bytes:
        """Count a hit and refresh the LRU position (lock held by caller)."""
        self.hits += 1
        metrics.counter("cache.hits").inc()
        metrics.gauge("cache.hit_rate").set(self._hit_rate_locked())
        self._pages.move_to_end(number)
        return page

    def _page(self, number: int) -> bytes:
        """One page through the cache; fills latch per page number."""
        with self._lock:
            page = self._pages.get(number)
            if page is not None:
                return self._record_hit(number, page)
            latch = self._latches.setdefault(
                number, lockdep.instrument(threading.Lock(), "cache.latch")
            )
        with latch:
            # Re-check under the mutex: another thread may have completed
            # the fill while this one waited on the latch.
            with self._lock:
                page = self._pages.get(number)
                if page is not None:
                    return self._record_hit(number, page)
            # Miss confirmed; this thread owns the fill for this page, and
            # the device read happens outside the LRU mutex so misses on
            # other pages proceed in parallel.
            page = self.device.read(number * self.page_size, self.page_size)
            with self._lock:
                self.misses += 1
                metrics.counter("cache.misses").inc()
                metrics.gauge("cache.hit_rate").set(self._hit_rate_locked())
                self._pages[number] = page
                if len(self._pages) > self.capacity_pages:
                    self._pages.popitem(last=False)
                self._latches.pop(number, None)
            return page

    def _account_logical(self, starts: np.ndarray, stops: np.ndarray) -> None:
        from repro.storage.device import _page_intervals

        pages = _page_intervals(starts, stops)
        nbytes = int(np.maximum(stops - starts, 0).sum())
        with self._lock:
            self.stats.add_read(pages.count, pages.run_count, nbytes)

    def read(self, offset: int, length: int) -> bytes:
        """Read a byte range through the cache (page-granular fills)."""
        if offset < 0 or length < 0 or offset + length > self.capacity:
            raise StorageError("read outside device bounds")
        self._account_logical(np.asarray([offset]), np.asarray([offset + length]))
        if not length:
            # Zero-length reads touch no pages (matches BlockDevice.read,
            # including at offset == capacity).
            return b""
        with trace.span("cache.read", io=self.device.stats, bytes=length):
            first = offset // self.page_size
            last = (offset + length - 1) // self.page_size
            chunks = [self._page(n) for n in range(first, last + 1)]
        blob = b"".join(chunks)
        start = offset - first * self.page_size
        return blob[start:start + length]

    def read_ranges(self, starts: np.ndarray, stops: np.ndarray) -> bytes:
        """Scattered read through the cache; logical pages are deduplicated."""
        starts = np.asarray(starts, dtype=np.int64)
        stops = np.asarray(stops, dtype=np.int64)
        if starts.size:
            # Validate before accounting, mirroring BlockDevice.read_ranges:
            # a rejected call must leave the logical counters untouched.
            if np.any(stops < starts):
                bad = int(np.argmax(stops < starts))
                raise StorageError(
                    f"inverted range [{int(starts[bad])}, {int(stops[bad])}) "
                    "in scattered read"
                )
            if int(starts.min()) < 0 or int(stops.max()) > self.capacity:
                raise StorageError("scattered read outside device bounds")
        self._account_logical(starts, stops)
        out = bytearray()
        with trace.span("cache.read_ranges", io=self.device.stats,
                        ranges=int(starts.size)):
            for start, stop in zip(starts.tolist(), stops.tolist()):
                if stop <= start:
                    continue
                first = start // self.page_size
                last = (stop - 1) // self.page_size
                blob = b"".join(self._page(n) for n in range(first, last + 1))
                shift = start - first * self.page_size
                out += blob[shift:shift + (stop - start)]
        return bytes(out)

    def write(self, offset: int, data: bytes) -> None:
        """Write-through: update the device; overlapping cached pages are
        invalidated (re-read on next access) so no stale data survives."""
        with trace.span("cache.write", io=self.device.stats, bytes=len(data)):
            self.device.write(offset, data)
        from repro.storage.device import _page_intervals

        pages = _page_intervals(
            np.asarray([offset]), np.asarray([offset + len(data)])
        )
        with self._lock:
            self.stats.add_write(pages.count, pages.run_count, len(data))
            if not data:
                return
            first = offset // self.page_size
            last = (offset + len(data) - 1) // self.page_size
            for number in range(first, last + 1):
                self._pages.pop(number, None)

    # ------------------------------------------------------------------ #
    # transactions
    # ------------------------------------------------------------------ #

    @contextmanager
    def transaction(self, meta_provider=None, on_sealed=None):
        """Delegate transaction scoping to the wrapped device.

        An aborted transaction drops every cached page: reads inside the
        scope may have filled the cache with uncommitted data (the WAL's
        read-your-writes overlay), which must not survive the rollback.
        ``on_sealed`` passes through to a group-commit-capable device
        (and is only accepted when one is underneath).
        """
        kwargs = {}
        if on_sealed is not None:
            kwargs["on_sealed"] = on_sealed
        completed = False
        try:
            with self.device.transaction(meta_provider=meta_provider, **kwargs):
                yield self
                completed = True
        finally:
            if not completed:
                with self._lock:
                    self._pages.clear()

    @property
    def in_transaction(self) -> bool:
        """Is the underlying device inside a transaction scope?"""
        return getattr(self.device, "in_transaction", False)

    @property
    def supports_rollback(self) -> bool:
        """Can the underlying device roll back a transaction?"""
        return getattr(self.device, "supports_rollback", False)

    @property
    def supports_group_commit(self) -> bool:
        """Does the device underneath accept ``on_sealed``?"""
        return getattr(self.device, "supports_group_commit", False)

    def on_rollback(self, undo) -> None:
        """Forward an undo action to the transactional device below."""
        self.device.on_rollback(undo)

    # ------------------------------------------------------------------ #

    def _hit_rate_locked(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of logical page touches served from memory."""
        with self._lock:
            return self._hit_rate_locked()

    def clear(self) -> None:
        """Drop every cached page (the cold-start state)."""
        with self._lock:
            self._pages.clear()

    def dump(self, path) -> object:
        """Write the raw device contents to a file (write-through cache holds
        no dirty pages, so the device image is always current)."""
        return self.device.dump(path)

    def close(self) -> None:
        """Close the underlying device."""
        self.device.close()

    def __enter__(self) -> "PageCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"PageCache({len(self._pages)}/{self.capacity_pages} pages, "
            f"hit rate {self.hit_rate:.0%})"
        )
