"""Buddy allocator (the Starburst LFM allocation scheme).

The Long Field Manager "stores long fields directly in an operating system
disk device ... using a buddy allocation scheme to promote contiguity"
(§5.1).  Contiguity is what lets the Hilbert curve's clustering reach the
disk: consecutive curve positions are consecutive bytes in one extent.

Classic power-of-two buddy system: blocks of size ``2^k * min_block``;
allocation splits larger blocks, freeing merges buddies back together.
"""

from __future__ import annotations

from repro.errors import AllocationError, ValidationError

__all__ = ["BuddyAllocator"]


class BuddyAllocator:
    """Allocates power-of-two blocks from a fixed arena."""

    def __init__(self, capacity: int, min_block: int = 4096):
        if min_block <= 0 or min_block & (min_block - 1):
            raise ValidationError("min_block must be a positive power of two")
        if capacity < min_block or capacity & (capacity - 1):
            raise ValidationError("capacity must be a power-of-two multiple of min_block")
        self.capacity = capacity
        self.min_block = min_block
        self._min_order = min_block.bit_length() - 1
        self._max_order = capacity.bit_length() - 1
        # free_lists[order] holds offsets of free blocks of size 2^order
        self._free_lists: dict[int, set[int]] = {
            order: set() for order in range(self._min_order, self._max_order + 1)
        }
        self._free_lists[self._max_order].add(0)
        self._allocated: dict[int, int] = {}  # offset -> order

    # ------------------------------------------------------------------ #

    def _order_for(self, size: int) -> int:
        if size <= 0:
            raise AllocationError("allocation size must be positive")
        order = max(self._min_order, (size - 1).bit_length())
        if order > self._max_order:
            raise AllocationError(
                f"request of {size} bytes exceeds arena capacity {self.capacity}"
            )
        return order

    def alloc(self, size: int) -> int:
        """Allocate a block of at least ``size`` bytes; returns its offset."""
        order = self._order_for(size)
        # Find the smallest free block that fits.
        source = order
        while source <= self._max_order and not self._free_lists[source]:
            source += 1
        if source > self._max_order:
            raise AllocationError(
                f"arena exhausted: no free block of {1 << order} bytes "
                f"(capacity {self.capacity}, allocated {self.allocated_bytes})"
            )
        offset = self._free_lists[source].pop()
        # Split down to the requested order, freeing the upper halves.
        while source > order:
            source -= 1
            buddy = offset + (1 << source)
            self._free_lists[source].add(buddy)
        self._allocated[offset] = order
        return offset

    def free(self, offset: int) -> None:
        """Release a block, merging with free buddies as far as possible."""
        try:
            order = self._allocated.pop(offset)
        except KeyError:
            raise AllocationError(f"offset {offset} is not an allocated block") from None
        while order < self._max_order:
            buddy = offset ^ (1 << order)
            if buddy not in self._free_lists[order]:
                break
            self._free_lists[order].remove(buddy)
            offset = min(offset, buddy)
            order += 1
        self._free_lists[order].add(offset)

    def carve(self, offset: int, size: int) -> None:
        """Mark a specific block as allocated (crash/restart recovery).

        Splits whichever free block contains ``offset`` down to the order
        that fits ``size``.  Used when reloading a persisted database: the
        saved field table records where every long field lives, and the
        allocator is rebuilt by carving those extents back out.
        """
        order = self._order_for(size)
        if offset & ((1 << order) - 1):
            raise AllocationError(
                f"offset {offset} is not aligned for a {1 << order}-byte block"
            )
        if offset in self._allocated:
            raise AllocationError(f"offset {offset} is already allocated")
        for source in range(order, self._max_order + 1):
            candidate = offset & ~((1 << source) - 1)
            if candidate not in self._free_lists[source]:
                continue
            self._free_lists[source].remove(candidate)
            current_offset, current_order = candidate, source
            while current_order > order:
                current_order -= 1
                half = current_offset + (1 << current_order)
                if offset >= half:
                    self._free_lists[current_order].add(current_offset)
                    current_offset = half
                else:
                    self._free_lists[current_order].add(half)
            self._allocated[offset] = order
            return
        raise AllocationError(f"no free block covers offset {offset}")

    def realloc(self, offset: int, new_size: int) -> int:
        """Resize the block at ``offset``; returns the (possibly new) offset.

        Same order: the block is untouched.  Shrinking splits in place —
        the upper halves join the free lists, the offset is stable.
        Growing allocates a fresh block *first* (so an exhausted arena
        raises :class:`~repro.errors.AllocationError` leaving the original
        allocation intact), then frees the old one; the caller must copy
        the payload to the returned offset.
        """
        try:
            order = self._allocated[offset]
        except KeyError:
            raise AllocationError(f"offset {offset} is not an allocated block") from None
        new_order = self._order_for(new_size)
        if new_order == order:
            return offset
        if new_order < order:
            for k in range(order - 1, new_order - 1, -1):
                self._free_lists[k].add(offset + (1 << k))
            self._allocated[offset] = new_order
            return offset
        new_offset = self.alloc(new_size)
        self.free(offset)
        return new_offset

    def validate(self) -> None:
        """Check every structural invariant; raises :class:`AllocationError`.

        Verified: all blocks aligned to their order and inside the arena,
        allocated blocks disjoint from each other and from free blocks,
        free + allocated bytes sum to the arena capacity, and no two free
        buddies left uncoalesced.  The torture tests call this after every
        random operation.
        """
        covered = 0
        seen: list[tuple[int, int, bool]] = []  # (offset, size, is_free)
        for offset, order in self._allocated.items():
            seen.append((offset, 1 << order, False))
        for order, offsets in self._free_lists.items():
            for offset in offsets:
                seen.append((offset, 1 << order, True))
        seen.sort()
        prev_end = 0
        for offset, size, _ in seen:
            if offset % size:
                raise AllocationError(
                    f"block at {offset} is misaligned for its size {size}"
                )
            if offset < prev_end:
                raise AllocationError(
                    f"block at {offset} overlaps the block ending at {prev_end}"
                )
            if offset + size > self.capacity:
                raise AllocationError(
                    f"block [{offset}, {offset + size}) exceeds arena capacity"
                )
            prev_end = offset + size
            covered += size
        if covered != self.capacity:
            raise AllocationError(
                f"blocks cover {covered} of {self.capacity} arena bytes"
            )
        for order in range(self._min_order, self._max_order):
            for offset in self._free_lists[order]:
                if (offset ^ (1 << order)) in self._free_lists[order]:
                    raise AllocationError(
                        f"free buddies at order {order} left uncoalesced "
                        f"({offset} and {offset ^ (1 << order)})"
                    )

    def allocations(self) -> dict[int, int]:
        """Snapshot of allocated blocks: offset -> block size in bytes."""
        return {offset: 1 << order for offset, order in self._allocated.items()}

    def block_size(self, offset: int) -> int:
        """Size of the allocated block at ``offset``."""
        try:
            return 1 << self._allocated[offset]
        except KeyError:
            raise AllocationError(f"offset {offset} is not an allocated block") from None

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def allocated_bytes(self) -> int:
        """Bytes currently allocated."""
        return sum(1 << order for order in self._allocated.values())

    @property
    def free_bytes(self) -> int:
        """Bytes currently free."""
        return self.capacity - self.allocated_bytes

    @property
    def allocation_count(self) -> int:
        """Number of live allocations."""
        return len(self._allocated)

    def fragmentation(self) -> float:
        """1 - (largest free block / total free bytes); 0 when unfragmented."""
        free = self.free_bytes
        if free == 0:
            return 0.0
        largest = 0
        for order in range(self._max_order, self._min_order - 1, -1):
            if self._free_lists[order]:
                largest = 1 << order
                break
        return 1.0 - largest / free

    def __repr__(self) -> str:
        return (
            f"BuddyAllocator({self.allocation_count} blocks, "
            f"{self.allocated_bytes}/{self.capacity} bytes used)"
        )
