"""Deterministic fault injection for the storage stack.

A :class:`FaultyDevice` wraps any block-device-like object and injects
failures from a seeded :class:`FaultSchedule`:

* **crash points** — after a chosen number of write calls the device
  raises :class:`~repro.errors.SimulatedCrash` and goes offline, exactly
  like a power failure mid-operation;
* **torn writes** — the crashing write lands only a seeded byte prefix
  (``torn="prefix"``), a seeded whole-page prefix — a partial extent —
  (``torn="pages"``), or nothing at all (``torn="none"``);
* **bit flips** — chosen write calls have one seeded bit silently
  corrupted, modelling media corruption that only checksums catch.

The schedule's write counter is shared by every device registered on it,
so one ``crash_after_writes`` index addresses a global crash point across
a data device *and* a WAL journal device — the crash-consistency suite
enumerates those points exhaustively.  All randomness derives from
``seed`` and the write index, so a failing schedule is replayed by
constructing the same :class:`FaultSchedule` again (``describe()`` prints
the recipe).
"""

from __future__ import annotations

import random

from repro.errors import SimulatedCrash, StorageError

__all__ = ["FaultSchedule", "FaultyDevice"]

_TORN_MODES = ("prefix", "pages", "none")


class FaultSchedule:
    """A deterministic plan of storage faults, shared across devices.

    ``crash_after_writes=N`` makes the *N-th* write call (1-based, counted
    across every device on this schedule) the crash point.  ``None`` never
    crashes — useful for dry runs that count a workload's writes via
    :attr:`writes_seen` before enumerating each point.
    """

    def __init__(
        self,
        seed: int = 0,
        crash_after_writes: int | None = None,
        torn: str = "prefix",
        bitflip_writes: tuple[int, ...] = (),
    ):
        if torn not in _TORN_MODES:
            raise StorageError(f"unknown torn-write mode {torn!r}; use one of {_TORN_MODES}")
        if crash_after_writes is not None and crash_after_writes < 1:
            raise StorageError("crash_after_writes is a 1-based write index")
        self.seed = int(seed)
        self.crash_after_writes = crash_after_writes
        self.torn = torn
        self.bitflip_writes = frozenset(int(i) for i in bitflip_writes)
        self.writes_seen = 0
        self.crashed = False

    # ------------------------------------------------------------------ #

    def _rng(self, write_index: int) -> random.Random:
        """A fresh deterministic stream for one write call."""
        return random.Random(self.seed * 1_000_003 + write_index)

    def _torn_prefix(self, write_index: int, length: int, page_size: int) -> int:
        """How many bytes of the crashing write actually reach the platter."""
        if self.torn == "none" or length == 0:
            return 0
        rng = self._rng(write_index)
        if self.torn == "pages":
            pages = length // page_size + 1
            return min(length, rng.randrange(pages) * page_size)
        return rng.randrange(length + 1)  # may be 0 (nothing) or length (all)

    def describe(self) -> str:
        """The replay recipe for this schedule."""
        return (
            f"FaultSchedule(seed={self.seed}, "
            f"crash_after_writes={self.crash_after_writes}, torn={self.torn!r}, "
            f"bitflip_writes={tuple(sorted(self.bitflip_writes))})"
        )

    def __repr__(self) -> str:
        return self.describe()


class FaultyDevice:
    """A block-device wrapper that injects faults from a :class:`FaultSchedule`.

    Duck-compatible with :class:`~repro.storage.device.BlockDevice`; after
    the schedule crashes, every operation raises
    :class:`~repro.errors.SimulatedCrash` — the machine is off.  The
    surviving on-disk bytes are harvested with :meth:`snapshot`, which
    models pulling the platter out of the wreck.
    """

    def __init__(self, inner, schedule: FaultSchedule, name: str = "device"):
        self.inner = inner
        self.schedule = schedule
        self.name = name

    # ------------------------------------------------------------------ #
    # pass-through geometry and accounting
    # ------------------------------------------------------------------ #

    @property
    def capacity(self) -> int:
        """The wrapped device's capacity in bytes."""
        return self.inner.capacity

    @property
    def page_size(self) -> int:
        """The wrapped device's page size."""
        return self.inner.page_size

    @property
    def stats(self):
        """The wrapped device's I/O statistics."""
        return self.inner.stats

    def _check_up(self) -> None:
        if self.schedule.crashed:
            raise SimulatedCrash(
                f"{self.name} is offline after a simulated crash "
                f"({self.schedule.describe()})"
            )

    # ------------------------------------------------------------------ #
    # I/O with injected faults
    # ------------------------------------------------------------------ #

    def read(self, offset: int, length: int) -> bytes:
        """Read through to the wrapped device."""
        self._check_up()
        return self.inner.read(offset, length)

    def read_ranges(self, starts, stops) -> bytes:
        """Batched read through to the wrapped device."""
        self._check_up()
        return self.inner.read_ranges(starts, stops)

    def write(self, offset: int, data: bytes) -> None:
        """Write through the fault schedule; may crash, tear, or corrupt."""
        self._check_up()
        schedule = self.schedule
        schedule.writes_seen += 1
        index = schedule.writes_seen
        if index in schedule.bitflip_writes and data:
            rng = schedule._rng(index)
            pos = rng.randrange(len(data))
            data = bytes(data[:pos]) + bytes([data[pos] ^ (1 << rng.randrange(8))]) \
                + bytes(data[pos + 1:])
        crash_at = schedule.crash_after_writes
        if crash_at is not None and index >= crash_at:
            prefix = schedule._torn_prefix(index, len(data), self.page_size)
            if prefix:
                self.inner.write(offset, bytes(data[:prefix]))
            schedule.crashed = True
            raise SimulatedCrash(
                f"simulated power failure on {self.name} at write #{index} "
                f"({prefix}/{len(data)} bytes landed; {schedule.describe()})"
            )
        self.inner.write(offset, data)

    # ------------------------------------------------------------------ #
    # lifecycle / duck interface
    # ------------------------------------------------------------------ #

    def transaction(self, meta_provider=None):
        """Delegate transaction scoping to the wrapped device (no-op on raw)."""
        return self.inner.transaction(meta_provider=meta_provider)

    @property
    def in_transaction(self) -> bool:
        """Whether the wrapped device is inside a transaction scope."""
        return getattr(self.inner, "in_transaction", False)

    @property
    def supports_rollback(self) -> bool:
        """Whether the wrapped device can roll back a transaction."""
        return getattr(self.inner, "supports_rollback", False)

    def on_rollback(self, undo) -> None:
        """Forward an undo action to the transactional device below."""
        self.inner.on_rollback(undo)

    def dump(self, path):
        """Write the device image to a file — refused once crashed."""
        self._check_up()
        return self.inner.dump(path)

    def snapshot(self) -> bytes:
        """The raw surviving bytes, readable even after the crash.

        This is the post-mortem harvest the recovery tests reload into a
        fresh device; it performs no I/O accounting.
        """
        return bytes(self.inner._backing.buf)

    def close(self) -> None:
        """Close the wrapped device."""
        self.inner.close()

    def __enter__(self) -> "FaultyDevice":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "crashed" if self.schedule.crashed else "healthy"
        return f"FaultyDevice({self.name}, {state}, {self.inner!r})"
