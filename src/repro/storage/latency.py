"""A block-device wrapper simulating one disk head per device.

In-process shards share the GIL, so CPU work cannot demonstrate the
paper's declustering argument.  What *can* is I/O latency: a real 1994
disk served one request at a time, and Hilbert declustering wins by
putting N disks to work in parallel.  :class:`LatencyDevice` models
exactly that — every read call pays a fixed seek/transfer latency under
a per-device mutex (one head), so a query fanned out over N shards
overlaps N sleeps while a single-node query serializes them.

Writes pass through unslowed: the scaling benchmark measures read
throughput, and slowing the bulk load would only make benches slower
without changing any measured ratio.

The wrapper is duck-compatible with :class:`~repro.storage.device.
BlockDevice` (and composes under :class:`~repro.storage.wal.
WriteAheadLog`): geometry, ``stats``, transactions, and dump/close all
pass through to the wrapped device.
"""

from __future__ import annotations

import threading
import time

from repro.obs import metrics

__all__ = ["LatencyDevice"]


class LatencyDevice:
    """Wraps a device; each read call sleeps ``read_latency`` seconds.

    The sleep happens while holding the device's private head mutex, so
    concurrent readers of one device queue behind each other — the
    physical constraint declustering across devices removes.
    """

    def __init__(self, inner, read_latency: float = 0.002):
        self.inner = inner
        self.read_latency = float(read_latency)
        # One disk head: a leaf mutex held only around the simulated seek.
        self._head_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # pass-through geometry and accounting
    # ------------------------------------------------------------------ #

    @property
    def capacity(self) -> int:
        """Wrapped device capacity in bytes."""
        return self.inner.capacity

    @property
    def page_size(self) -> int:
        """Wrapped device page size."""
        return self.inner.page_size

    @property
    def stats(self):
        """The wrapped device's I/O accounting (latency adds no I/O)."""
        return self.inner.stats

    @property
    def in_transaction(self) -> bool:
        """Pass-through of the wrapped device's transaction state."""
        return getattr(self.inner, "in_transaction", False)

    def transaction(self, meta_provider=None):
        """Delegate transaction scoping to the wrapped device."""
        return self.inner.transaction(meta_provider)

    # ------------------------------------------------------------------ #
    # I/O
    # ------------------------------------------------------------------ #

    def _seek(self) -> None:
        """Pay one head movement: serialize on the mutex, then sleep."""
        if self.read_latency <= 0:
            return
        with self._head_lock:
            time.sleep(self.read_latency)
        metrics.counter("device.simulated_seeks").inc()

    def read(self, offset: int, length: int) -> bytes:
        """One read call = one head movement plus the wrapped read."""
        self._seek()
        return self.inner.read(offset, length)

    def read_ranges(self, starts, stops) -> bytes:
        """One gather call = one head movement plus the wrapped gather."""
        self._seek()
        return self.inner.read_ranges(starts, stops)

    def write(self, offset: int, data: bytes) -> None:
        """Writes pass through unslowed (see module docstring)."""
        self.inner.write(offset, data)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def dump(self, path):
        """Dump the wrapped device's contents."""
        return self.inner.dump(path)

    def close(self) -> None:
        """Close the wrapped device."""
        self.inner.close()

    def __enter__(self) -> "LatencyDevice":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"LatencyDevice({self.read_latency * 1000:.1f}ms, {self.inner!r})"
