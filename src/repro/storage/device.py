"""Block device with 4 KiB-page I/O accounting.

The paper's evaluation reports "LFM Disk I/Os (4KB)" for every query
(Tables 3 and 4): the number of 4 KiB pages touched while reading long
fields.  :class:`BlockDevice` is a byte store (memory- or file-backed) that
counts exactly that — a scattered read of many small runs that land on the
same page costs one I/O, which is precisely the effect Hilbert clustering
is designed to exploit.

The device performs no buffering, matching the paper's setup ("Starburst's
Long Field Manager performs no buffering").
"""

from __future__ import annotations

import mmap
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import StorageError
from repro.regions.intervals import IntervalSet

__all__ = ["BlockDevice", "IOStats", "PAGE_SIZE", "attribute_io"]

PAGE_SIZE = 4096

#: per-thread (source, sink) attribution pairs — see :func:`attribute_io`
_IO_SINKS = threading.local()


@contextmanager
def attribute_io(source: "IOStats"):
    """Collect this thread's I/O on ``source`` into a private delta.

    Yields a fresh :class:`IOStats`; every counter update ``source``
    receives *from this thread* inside the block is mirrored into it.
    Under concurrency this is the exact per-statement attribution that a
    global before/after snapshot cannot give (another session's pages land
    inside the window) — it is how EXPLAIN ANALYZE and the flight recorder
    stay honest with many sessions in flight.  Nesting is allowed; every
    enclosing sink sees the I/O.

    The sink is only ever touched by the registering thread, so it needs
    no lock; the mechanism adds two attribute reads to the accounting fast
    path when unused.
    """
    sink = IOStats()
    pairs = getattr(_IO_SINKS, "pairs", None)
    if pairs is None:
        pairs = _IO_SINKS.pairs = []
    pairs.append((source, sink))
    try:
        yield sink
    finally:
        pairs.remove((source, sink))


def _sinks_for(source: "IOStats"):
    pairs = getattr(_IO_SINKS, "pairs", None)
    if not pairs:
        return ()
    return [sink for src, sink in pairs if src is source]


@dataclass
class IOStats:
    """Cumulative I/O counters; subtract snapshots to measure one operation."""

    pages_read: int = 0
    pages_written: int = 0
    read_extents: int = 0  #: contiguous page ranges read (a proxy for seeks)
    write_extents: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    read_calls: int = 0
    write_calls: int = 0

    def copy(self) -> "IOStats":
        """An independent snapshot, for before/after deltas."""
        return IOStats(**vars(self))

    def add_read(self, pages: int, extents: int, nbytes: int) -> None:
        """Account one logical read; tees into this thread's sinks.

        The storage layer's single mutation point for read counters: the
        calling thread performed the I/O, so any :func:`attribute_io`
        collectors it registered on this object receive the same delta.
        """
        self.pages_read += pages
        self.read_extents += extents
        self.bytes_read += nbytes
        self.read_calls += 1
        for sink in _sinks_for(self):
            sink.pages_read += pages
            sink.read_extents += extents
            sink.bytes_read += nbytes
            sink.read_calls += 1

    def add_write(self, pages: int, extents: int, nbytes: int) -> None:
        """Account one logical write; tees into this thread's sinks."""
        self.pages_written += pages
        self.write_extents += extents
        self.bytes_written += nbytes
        self.write_calls += 1
        for sink in _sinks_for(self):
            sink.pages_written += pages
            sink.write_extents += extents
            sink.bytes_written += nbytes
            sink.write_calls += 1

    def __sub__(self, other: "IOStats") -> "IOStats":
        return IOStats(**{k: v - getattr(other, k) for k, v in vars(self).items()})

    def __add__(self, other: "IOStats") -> "IOStats":
        return IOStats(**{k: v + getattr(other, k) for k, v in vars(self).items()})

    @property
    def total_pages(self) -> int:
        """Pages read plus pages written."""
        return self.pages_read + self.pages_written

    def reset(self) -> None:
        """Zero every counter."""
        for key in vars(self):
            setattr(self, key, 0)

    def __repr__(self) -> str:
        return (
            f"IOStats(pages_read={self.pages_read}, pages_written={self.pages_written}, "
            f"read_extents={self.read_extents}, bytes_read={self.bytes_read})"
        )


def _page_intervals(starts: np.ndarray, stops: np.ndarray) -> IntervalSet:
    """The set of page numbers touched by the byte ranges ``[start, stop)``."""
    starts = np.asarray(starts, dtype=np.int64)
    stops = np.asarray(stops, dtype=np.int64)
    nonempty = stops > starts
    starts, stops = starts[nonempty], stops[nonempty]
    first_page = starts // PAGE_SIZE
    last_page = (stops - 1) // PAGE_SIZE + 1
    return IntervalSet(first_page, last_page)


@dataclass
class _Backing:
    buf: bytearray | mmap.mmap
    file: object = None


class BlockDevice:
    """A fixed-capacity raw byte device, the paper's "AIX logical volume"."""

    def __init__(self, capacity: int, path: str | Path | None = None,
                 page_size: int = PAGE_SIZE, preserve_contents: bool = False):
        if capacity <= 0 or capacity % page_size:
            raise StorageError(
                f"device capacity must be a positive multiple of {page_size}"
            )
        self.capacity = int(capacity)
        self.page_size = int(page_size)
        self.stats = IOStats()
        # Guards the I/O counters (and, for writes, the buffer mutation):
        # concurrent readers may gather bytes in parallel, but every
        # counter update is atomic so `stats` stays exact under threads.
        self._lock = threading.Lock()
        if path is None:
            self._backing = _Backing(bytearray(self.capacity))
        else:
            path = Path(path)
            if preserve_contents:
                if not path.exists():
                    raise StorageError(f"device image {path} does not exist")
                if path.stat().st_size != self.capacity:
                    raise StorageError(
                        f"device image {path} is {path.stat().st_size} bytes, "
                        f"expected {self.capacity}"
                    )
                f = open(path, "r+b")
            else:
                f = open(path, "w+b")
                f.truncate(self.capacity)
            self._backing = _Backing(mmap.mmap(f.fileno(), self.capacity), f)

    def dump(self, path: str | Path) -> Path:
        """Write the raw device contents to a file (no I/O accounting).

        The image lands atomically — written to a sibling temp file and
        renamed into place — so a crash mid-dump never leaves a truncated
        image where a good one used to be.
        """
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_bytes(bytes(self._backing.buf))
        os.replace(tmp, path)
        return path

    # ------------------------------------------------------------------ #
    # transactions (no-op at this layer)
    # ------------------------------------------------------------------ #

    @contextmanager
    def transaction(self, meta_provider=None):
        """A zero-cost transaction scope: the raw device has no atomicity.

        This exists so clients (:class:`~repro.storage.lfm.LongFieldManager`)
        can scope mutations unconditionally; wrapping the device in a
        :class:`~repro.storage.wal.WriteAheadLog` upgrades the same scopes
        to real crash-safe transactions.  Performs no I/O, so Table 3/4
        accounting is untouched when the WAL is disabled.
        """
        yield self

    @property
    def in_transaction(self) -> bool:
        """Raw devices never hold an open transaction."""
        return False

    # ------------------------------------------------------------------ #
    # raw byte access
    # ------------------------------------------------------------------ #

    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.capacity:
            raise StorageError(
                f"access [{offset}, {offset + length}) outside device of "
                f"capacity {self.capacity}"
            )

    def read(self, offset: int, length: int) -> bytes:
        """Read one contiguous byte range."""
        self._check_range(offset, length)
        self._account_read(np.asarray([offset]), np.asarray([offset + length]))
        return bytes(self._backing.buf[offset:offset + length])

    def write(self, offset: int, data: bytes) -> None:
        """Write one contiguous byte range."""
        self._check_range(offset, len(data))
        pages = _page_intervals(np.asarray([offset]), np.asarray([offset + len(data)]))
        with self._lock:
            self._backing.buf[offset:offset + len(data)] = data
            self.stats.add_write(pages.count, pages.run_count, len(data))

    def read_ranges(self, starts: np.ndarray, stops: np.ndarray) -> bytes:
        """Gather many byte ranges in one logical operation.

        Page accounting is deduplicated across the ranges: several runs on
        the same 4 KiB page cost a single I/O.  This models the LFM reading
        the pages that hold a REGION's voxels.
        """
        starts = np.asarray(starts, dtype=np.int64)
        stops = np.asarray(stops, dtype=np.int64)
        if starts.size:
            # Validate everything before _account_read: a rejected call must
            # leave the Table 3/4 counters untouched.
            if np.any(stops < starts):
                bad = int(np.argmax(stops < starts))
                raise StorageError(
                    f"inverted range [{int(starts[bad])}, {int(stops[bad])}) "
                    "in scattered read"
                )
            self._check_range(int(starts.min()), 0)
            self._check_range(0, int(stops.max()))
        self._account_read(starts, stops)
        from repro.regions.intervals import concat_ranges

        view = np.frombuffer(memoryview(self._backing.buf), dtype=np.uint8)
        idx = concat_ranges(starts, stops)
        return view[idx].tobytes()

    def _account_read(self, starts: np.ndarray, stops: np.ndarray) -> None:
        pages = _page_intervals(starts, stops)
        nbytes = int(np.maximum(stops - starts, 0).sum())
        with self._lock:
            self.stats.add_read(pages.count, pages.run_count, nbytes)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Flush and release the backing store (no-op for memory)."""
        if isinstance(self._backing.buf, mmap.mmap):
            self._backing.buf.flush()
            self._backing.buf.close()
            self._backing.file.close()

    def __enter__(self) -> "BlockDevice":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        kind = "file" if isinstance(self._backing.buf, mmap.mmap) else "memory"
        return f"BlockDevice({self.capacity} bytes, {kind}-backed)"
