"""Page-granular write-ahead logging for the block device.

The paper's Long Field Manager writes extents straight to a raw device;
a crash mid-write corrupts the store silently.  :class:`WriteAheadLog`
wraps a data device and journals every dirty 4 KiB page — with CRC32
checksums and a commit record — to a *separate* journal device before any
byte reaches the data device.  Any crash point therefore leaves the store
either at the old state or the new state, never between:

* crash before the commit record is durable → recovery finds a torn
  transaction, discards it, and the data device still holds the old state;
* crash after the commit record → recovery replays the journaled pages
  (idempotently) and the data device holds the new state.

**Journal format** (byte-addressed on the journal device; transactions
append until a checkpoint — ``reset_journal()``, called after the catalog
is durably saved — rewinds the head to 0, so every acknowledged commit
stays recoverable until its metadata is checkpointed elsewhere):

.. code-block:: text

    checkpoint   "QCKP" | last_txn_id u64 | ckpt_crc u32
    skip         "QSKP" | skip_len u64 | skip_crc u32   (jump skip_len bytes)
    TXN header   "QWAL" | version u16 | reserved u16 | txn_id u64 |
                 n_pages u32 | meta_len u32 | header_crc u32 | meta bytes
    page record  page_no u64 | payload_crc u32 | page_size payload bytes
    commit       "QCMT" | txn_id u64 | commit_crc u32   (crc of all above)

``meta`` is an optional JSON blob captured at commit time (the LFM
journals its field table there), so recovery can hand back the metadata
matching the replayed pages.  Recovery scans from offset 0, accepting
transactions only while every checksum verifies and txn ids strictly
increase; the first torn or corrupt record stops the scan and discards
the tail.

The skip record is how the log stays scannable after a *failed* group
flush on a live system that keeps running: the failure leaves a torn
region in the journal while later transactions have already sealed
(reserved space) beyond it, so the flush leader stamps a CRC'd skip
record over the hole and the scan jumps straight to the first record
after it.  The transactions inside the hole were reported rolled back
to their committers, so skipping them *is* the correct recovery.  If
the stamp itself fails (the journal is the broken device), the hole is
remembered and every subsequent flush refuses to journal past it —
re-attempting the repair first — so no commit is ever acknowledged that
a recovery scan could not reach.

The checkpoint record is what ``reset_journal()`` writes at offset 0: it
carries the newest txn id ever committed, so the epoch survives a
restart.  Without it, a reopened process would restart txn ids at 1 and
a later scan could walk off the end of the new (shorter) epoch onto an
intact stale record whose old id still reads as "monotonically larger" —
replaying pre-checkpoint pages over post-checkpoint data.  Recovery
seeds its monotonicity floor from the checkpoint record (and, belt and
braces, from the ``next_txn_id`` the catalog persists) and rejects any
record at or below it.

Transactions buffer dirty pages in memory (reads see them — the log is
the DBMS-side redo buffer), append to the journal at commit, then apply
to the data device (apply-at-commit) — so outside a transaction the
data device always holds exactly the committed state and ``dump()`` is
trivially consistent.

The wrapper is duck-compatible with :class:`BlockDevice`: ``stats`` holds
the *logical* I/O the client asked for (what Table 3/4 instrumentation
reads), ``data_stats`` the physical data-device I/O, and
``journal_stats`` the journal I/O — kept separate so enabling the WAL
never perturbs the paper's LFM page counts.  Activity is surfaced through
``wal.*`` metrics and ``wal.commit`` / ``wal.apply`` / ``wal.recover``
trace spans.
"""

from __future__ import annotations

import json
import struct
import threading
import time
import zlib
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.concurrency import guarded_by, lockdep
from repro.errors import StorageError, WalError
from repro.obs import metrics, recorder, trace
from repro.storage.device import IOStats, _page_intervals

__all__ = ["WriteAheadLog", "RecoveryReport", "recover_journal", "WAL_VERSION"]

WAL_VERSION = 1

_TXN_MAGIC = b"QWAL"
_COMMIT_MAGIC = b"QCMT"
_CKPT_MAGIC = b"QCKP"
_HEADER = struct.Struct("<4sHHQII")   # magic, version, reserved, txn_id, n_pages, meta_len
_CRC = struct.Struct("<I")
_PAGE = struct.Struct("<QI")          # page_no, payload_crc
_COMMIT = struct.Struct("<4sQI")      # magic, txn_id, commit_crc
_CKPT = struct.Struct("<4sQI")        # magic, last_txn_id, ckpt_crc
_SKIP_MAGIC = b"QSKP"
_SKIP = struct.Struct("<4sQI")        # magic, skip_len, skip_crc


@dataclass
class RecoveryReport:
    """What one recovery pass found in the journal."""

    replayed_txn_ids: list[int] = field(default_factory=list)
    pages_replayed: int = 0
    discarded: int = 0             #: torn/corrupt transactions dropped
    meta: dict | None = None       #: metadata of the newest committed txn
    end_offset: int = 0            #: journal byte just past the last valid record
    last_txn_id: int = 0           #: newest id seen (checkpoint or replayed txn)

    @property
    def replayed(self) -> int:
        """Number of transactions replayed from the journal."""
        return len(self.replayed_txn_ids)

    def __repr__(self) -> str:
        return (
            f"RecoveryReport(replayed={self.replayed_txn_ids}, "
            f"pages={self.pages_replayed}, discarded={self.discarded})"
        )


def _scan_journal(journal, last_id: int = 0) -> tuple[list, int, int, int]:
    """Parse the journal into committed transactions plus a discard count.

    Returns ``(txns, discarded, end_offset, last_id)`` where each txn is
    ``(txn_id, meta, [(page_no, payload), ...])``, ``end_offset`` is the
    byte just past the last valid record, and ``last_id`` the newest txn
    id accepted (seeded by a checkpoint record or the caller's floor).
    The scan stops at the first record that fails a magic, bounds,
    checksum, or txn-id-monotonic check; if that point lies inside a
    started transaction it counts as one discarded (torn) transaction.
    """
    page_size = journal.page_size
    capacity = journal.capacity
    txns: list[tuple[int, dict | None, list[tuple[int, bytes]]]] = []
    pos = 0
    while True:
        if pos + _CKPT.size > capacity:
            return txns, 0, pos, last_id
        probe = journal.read(pos, _CKPT.size)
        if probe[:4] == _CKPT_MAGIC:
            _, ckpt_id, ckpt_crc = _CKPT.unpack(probe)
            if ckpt_crc != zlib.crc32(probe[:_CKPT.size - _CRC.size]):
                return txns, 0, pos, last_id
            if ckpt_id < last_id:
                return txns, 0, pos, last_id
            last_id = ckpt_id
            pos += _CKPT.size
            continue
        if probe[:4] == _SKIP_MAGIC:
            _, skip_len, skip_crc = _SKIP.unpack(probe)
            if skip_crc != zlib.crc32(probe[:_SKIP.size - _CRC.size]):
                return txns, 0, pos, last_id
            if skip_len < _SKIP.size or pos + skip_len > capacity:
                return txns, 0, pos, last_id
            # A repaired hole: a group flush failed here and the leader
            # stamped the torn region over.  The transactions inside
            # were reported rolled back, so jump to the first record
            # beyond the hole (not counted as discarded — nothing
            # acknowledged is being dropped).
            pos += skip_len
            continue
        head_len = _HEADER.size + _CRC.size
        if pos + head_len > capacity:
            return txns, 0, pos, last_id
        blob = journal.read(pos, head_len)
        magic, version, _, txn_id, n_pages, meta_len = _HEADER.unpack(blob[:_HEADER.size])
        if magic != _TXN_MAGIC or version != WAL_VERSION:
            return txns, 0, pos, last_id
        (header_crc,) = _CRC.unpack(blob[_HEADER.size:])
        if pos + head_len + meta_len > capacity:
            return txns, 1, pos, last_id
        meta_bytes = journal.read(pos + head_len, meta_len) if meta_len else b""
        if header_crc != zlib.crc32(blob[:_HEADER.size] + meta_bytes):
            return txns, 1, pos, last_id
        if txn_id <= last_id:
            # A stale record from an earlier, already-checkpointed epoch.
            return txns, 0, pos, last_id
        running = zlib.crc32(blob + meta_bytes)
        cursor = pos + head_len + meta_len
        pages: list[tuple[int, bytes]] = []
        ok = True
        for _ in range(n_pages):
            record_len = _PAGE.size + page_size
            if cursor + record_len > capacity:
                ok = False
                break
            record = journal.read(cursor, record_len)
            page_no, payload_crc = _PAGE.unpack(record[:_PAGE.size])
            payload = record[_PAGE.size:]
            if payload_crc != zlib.crc32(payload):
                ok = False
                break
            running = zlib.crc32(record, running)
            pages.append((page_no, payload))
            cursor += record_len
        if not ok:
            return txns, 1, pos, last_id
        if cursor + _COMMIT.size > capacity:
            return txns, 1, pos, last_id
        commit = journal.read(cursor, _COMMIT.size)
        commit_magic, commit_id, commit_crc = _COMMIT.unpack(commit)
        if commit_magic != _COMMIT_MAGIC or commit_id != txn_id or commit_crc != running:
            return txns, 1, pos, last_id
        try:
            meta = json.loads(meta_bytes) if meta_len else None
        except ValueError:
            return txns, 1, pos, last_id
        txns.append((txn_id, meta, pages))
        last_id = txn_id
        pos = cursor + _COMMIT.size


class _CommitBatch:
    """One sealed transaction awaiting its (possibly grouped) flush.

    Built under the transaction lock by ``_seal``: journal space is
    reserved (``start``), the txn id assigned, the header+meta bytes
    rendered, and the dirty pages captured.  The flush leader writes the
    journal records and applies the pages later, outside the lock.
    """

    __slots__ = ("txn_id", "start", "head_bytes", "pages", "meta", "undo",
                 "total", "done", "error", "committed", "flushed")

    def __init__(self, txn_id, start, head_bytes, pages, meta, undo, total):
        self.txn_id = txn_id
        self.start = start
        self.head_bytes = head_bytes
        self.pages = pages          # [(page_no, payload bytearray)], sorted
        self.meta = meta
        self.undo = undo
        self.total = total
        self.done = False           # guarded_by: _commit_cond
        self.error = None           # guarded_by: _commit_cond
        #: commit record durably journaled — the batch can no longer roll
        #: back, even if a later step of the same flush fails (set by the
        #: flush leader only, read after ``done`` is observed)
        self.committed = False
        #: journal + apply + overlay-clear all completed
        self.flushed = False


def recover_journal(device, journal, next_txn_id: int = 1) -> RecoveryReport:
    """Replay committed journal transactions into ``device``; discard torn ones.

    ``next_txn_id`` is an externally persisted id floor (the catalog's,
    if any): records with ids below it predate the last checkpoint and
    are rejected even if the checkpoint record itself was torn.
    Idempotent: replaying a transaction writes the same committed page
    images, so a crash *during* recovery is healed by recovering again.
    """
    report = RecoveryReport()
    with trace.span("wal.recover", io=journal.stats):
        txns, report.discarded, report.end_offset, report.last_txn_id = \
            _scan_journal(journal, last_id=max(0, next_txn_id - 1))
        page_size = device.page_size
        for txn_id, meta, pages in txns:
            for page_no, payload in pages:
                device.write(page_no * page_size, payload)
                report.pages_replayed += 1
            report.replayed_txn_ids.append(txn_id)
            if meta is not None:
                report.meta = meta
    metrics.counter("wal.recoveries").inc()
    metrics.counter("wal.txns_replayed").inc(report.replayed)
    metrics.counter("wal.txns_discarded").inc(report.discarded)
    metrics.counter("wal.pages_replayed").inc(report.pages_replayed)
    return report


class WriteAheadLog:
    """A crash-safe, transaction-scoped wrapper around a data device.

    ``device`` holds the data pages; ``journal`` is a second (typically
    much smaller) device holding the redo log.  Construction runs
    recovery by default, replaying whatever committed transactions the
    journal holds — the report lands on :attr:`recovery` and the newest
    committed metadata on :attr:`last_committed_meta`.

    Writes outside an explicit :meth:`transaction` scope auto-commit as a
    single-write transaction, so *every* write is journaled.
    """

    def __init__(self, device, journal, recover: bool = True,
                 next_txn_id: int = 1, flush_latency: float = 0.0):
        if journal.page_size != device.page_size:
            raise WalError(
                f"journal page size {journal.page_size} does not match "
                f"data device page size {device.page_size}"
            )
        self.device = device
        self.journal = journal
        self.page_size = device.page_size
        self.capacity = device.capacity
        #: simulated fsync cost, paid once per flushed *group* — the knob
        #: the mixed-workload bench turns to model real commit-path I/O
        #: latency (in-memory devices otherwise make flushes free)
        self.flush_latency = float(flush_latency)
        self.stats = IOStats()  # logical accounting; guarded_by: _stats_lock
        self._depth = 0  # guarded_by: txn
        # Commit serialization: the outermost transaction scope owns this
        # re-entrant lock for its whole extent, so concurrent writers
        # serialize journal commits instead of interleaving dirty pages —
        # nesting within one thread still joins the outer transaction.
        # Since group commit, the lock covers buffering and *sealing*
        # only: the journal flush happens outside it, so the next writer
        # can start while this one's flush is still in flight.
        self._txn_lock = lockdep.instrument(
            threading.RLock(), "wal.txn", reentrant=True
        )
        self._stats_lock = lockdep.instrument(threading.Lock(), "wal.stats")
        self._dirty: dict[int, bytearray] = {}  # guarded_by: txn
        self._undo: list = []  # guarded_by: txn
        self._meta_provider = None  # guarded_by: txn
        self._on_sealed = None  # guarded_by: txn
        self._owner: int | None = None  # owning thread ident; guarded_by: txn
        self._next_txn_id = max(1, int(next_txn_id))  # guarded_by: txn
        self._journal_head = 0  # append point; guarded_by: txn
        # Group-commit machinery.  The condition is a deliberately
        # uninstrumented leaf: it is only ever held briefly around queue
        # and flag flips, never while acquiring another tracked lock.
        self._commit_cond = threading.Condition()
        self._commit_queue: deque[_CommitBatch] = deque()  # guarded_by: _commit_cond
        self._flusher_active = False  # guarded_by: _commit_cond
        # Sealed-but-not-yet-applied page images.  Readers overlay these
        # so committed state is visible before the (possibly grouped,
        # possibly slow) apply lands; the flusher removes entries as it
        # applies.  Maps page_no -> (txn_id, payload).
        self._pending_lock = threading.Lock()  # leaf; guards _pending
        self._pending: dict[int, tuple[int, bytearray]] = {}
        #: byte range of a journal hole left by a failed group flush that
        #: could not be skip-stamped yet (the journal itself was failing).
        #: Touched only by the flush leader and by ``reset_journal`` after
        #: a drain, which are mutually exclusive by construction.
        self._repair_pending: tuple[int, int] | None = None
        #: replication ship hooks, called by the flush leader once per
        #: committed batch, in txn-id order, after the commit record is
        #: durable.  Appended before concurrent traffic starts (replica
        #: attach); the leader reads a snapshot, so a racing append at
        #: worst misses the in-flight group — which the replica's resync
        #: path replays anyway.
        self._ship_hooks: list = []
        self.last_committed_meta: dict | None = None  # updated by the flusher
        self.recovery: RecoveryReport | None = None
        if recover:
            self.recovery = recover_journal(
                device, journal, next_txn_id=self._next_txn_id
            )
            # Ids continue across restarts: the checkpoint record (or the
            # caller's persisted floor) keeps monotonicity over the stale
            # epoch still readable beyond the journal head.
            self._next_txn_id = max(
                self._next_txn_id, self.recovery.last_txn_id + 1
            )
            # Append after the valid records (a torn tail gets overwritten).
            self._journal_head = self.recovery.end_offset
            self.last_committed_meta = self.recovery.meta
            if self.recovery.replayed or self.recovery.discarded:
                # A crash happened before this open: leave an incident
                # report behind (a clean reopen replays nothing and stays
                # quiet).
                recorder.incident("wal.recovery", trigger={
                    "replayed_txn_ids": list(self.recovery.replayed_txn_ids),
                    "pages_replayed": self.recovery.pages_replayed,
                    "discarded": self.recovery.discarded,
                    "last_txn_id": self.recovery.last_txn_id,
                })

    # ------------------------------------------------------------------ #
    # accounting views
    # ------------------------------------------------------------------ #

    @property
    def data_stats(self) -> IOStats:
        """Physical I/O that reached the data device."""
        return self.device.stats

    @property
    def journal_stats(self) -> IOStats:
        """Journal I/O — deliberately separate from the data accounting."""
        return self.journal.stats

    @property
    def in_transaction(self) -> bool:
        """Is a transaction scope currently open?"""
        return self._depth > 0

    @property
    def next_txn_id(self) -> int:
        """The id the next commit will use (persisted by ``save_database``)."""
        return self._next_txn_id

    @property
    def supports_rollback(self) -> bool:
        """Transactions here really roll back; :meth:`on_rollback` works."""
        return True

    @property
    def supports_group_commit(self) -> bool:
        """``transaction`` accepts ``on_sealed`` for early lock release."""
        return True

    # ------------------------------------------------------------------ #
    # transactions
    # ------------------------------------------------------------------ #

    @contextmanager
    def transaction(self, meta_provider=None, on_sealed=None):
        """Scope a transaction; nested scopes join the outermost one.

        ``meta_provider`` — a zero-argument callable evaluated at commit
        time — supplies the JSON-serializable metadata journaled with the
        commit record (the LFM passes its ``export_state``).  On an
        exception the buffered pages are discarded: the data device never
        saw them, so the store stays at the old state.

        Under concurrent writers the scope is thread-exclusive: a second
        thread opening a transaction blocks until the first *seals*.
        Since group commit, commit happens in two steps: **seal** (under
        the transaction lock: evaluate metadata, reserve journal space,
        assign the txn id, capture the dirty pages as a
        :class:`_CommitBatch`) and **flush** (outside the lock: journal
        writes + apply, performed by a single leader for every batch
        queued meanwhile).  ``on_sealed`` — called once after a
        successful outermost seal, before the flush — lets the caller
        release its own outer locks early, which is what makes grouping
        possible; if it raises, the seal is retracted and the
        transaction rolls back.  This scope does not return until this
        transaction's flush completed, so durability-before-acknowledge
        is unchanged.

        A flush failure rolls the transaction back only while its commit
        record has not reached the journal.  Once the commit record is
        durable the transaction is committed — recovery would replay it —
        so a data-device failure during the apply re-raises here *without*
        unwinding state: in-memory and durable state stay in agreement
        (the committed pages keep serving from the pending overlay).
        """
        state: dict = {"batch": None}
        with self._txn_lock:
            with self._transaction_scope(meta_provider, on_sealed, state):
                yield self
        # Reached only when the scope exited cleanly (sealed): wait for —
        # or lead — the group flush, with the transaction lock released.
        batch = state["batch"]
        if batch is not None:
            self._await_flush(batch)

    @contextmanager
    def _transaction_scope(self, meta_provider=None, on_sealed=None,
                           state: dict | None = None):
        """The single-threaded transaction body (txn lock already held)."""
        if self._depth == 0:
            self._dirty = {}
            self._undo = []
            self._meta_provider = meta_provider
            self._on_sealed = on_sealed
            self._owner = threading.get_ident()
        elif meta_provider is not None and self._meta_provider is None:
            self._meta_provider = meta_provider
        self._depth += 1
        metrics.counter("wal.transactions").inc()
        completed = False
        try:
            yield self
            completed = True
        finally:
            self._depth -= 1
            if self._depth == 0:
                callback = self._on_sealed
                self._on_sealed = None
                self._owner = None
                if not completed:
                    self._rollback()
                else:
                    try:
                        batch = self._seal()
                    # Cleanup-and-reraise: even SimulatedCrash must unwind
                    # the in-memory state.
                    except BaseException:  # qblint: disable=no-broad-except
                        # The seal never reserved journal space (journal
                        # full, meta serialization failure): the caller
                        # must see the old in-memory state too.
                        self._rollback()
                        raise
                    if callback is not None:
                        try:
                            callback()
                        # Cleanup-and-reraise: a failing publish callback
                        # must not leave a sealed batch behind.
                        except BaseException:  # qblint: disable=no-broad-except
                            if batch is not None:
                                self._retract_sealed(batch)
                            raise
                    if batch is not None:
                        # Enqueue under the txn lock so queue order equals
                        # txn-id order — the flusher applies strictly in
                        # commit order even across groups.
                        with self._commit_cond:
                            self._commit_queue.append(batch)
                        if state is not None:
                            state["batch"] = batch

    def on_rollback(self, undo) -> None:
        """Register a callable run if the enclosing transaction rolls back.

        Clients mutating in-memory metadata inside a transaction (the LFM
        registering a field, the allocator carving an extent) register the
        inverse action here; if the *outermost* scope aborts — including a
        join via :meth:`~repro.db.database.Database.transaction` where the
        failure happens long after the mutating call returned — the
        callbacks run in reverse registration order, so memory state rolls
        back together with the discarded pages.  On commit they are
        dropped.
        """
        # Under the transaction lock: the registration joins the open
        # transaction it belongs to (re-entrant for the owning thread),
        # and a stray call from a non-owner thread serializes against the
        # owner's commit instead of racing the undo list.
        with self._txn_lock:
            if self._depth == 0:
                raise WalError("on_rollback requires an open transaction")
            self._undo.append(undo)

    def _rollback(self) -> None:
        """Discard buffered pages and unwind registered undo actions."""
        self._dirty = {}
        self._meta_provider = None
        undo, self._undo = self._undo, []
        for action in reversed(undo):
            action()
        metrics.counter("wal.rollbacks").inc()

    @guarded_by("txn")
    def _seal(self) -> _CommitBatch | None:
        """Turn the buffered transaction into a :class:`_CommitBatch`.

        Evaluates the metadata provider, renders the journal header,
        checks journal capacity (raising *before* any state moves, so the
        caller's rollback still unwinds everything), then atomically
        reserves journal space, assigns the txn id, registers the pages
        in the pending overlay, and detaches the dirty/undo state into
        the batch.  Returns ``None`` for an empty transaction.
        """
        dirty = self._dirty
        provider = self._meta_provider
        if not dirty and provider is None:
            # Nothing happened: no batch, nothing to flush.
            self._undo = []
            self._meta_provider = None
            return None
        meta = provider() if provider is not None else None
        meta_bytes = json.dumps(meta).encode("ascii") if meta is not None else b""
        txn_id = self._next_txn_id
        header = _HEADER.pack(
            _TXN_MAGIC, WAL_VERSION, 0, txn_id, len(dirty), len(meta_bytes)
        )
        header += _CRC.pack(zlib.crc32(header + meta_bytes))
        pages = sorted(dirty.items())
        total = len(header) + len(meta_bytes) \
            + len(pages) * (_PAGE.size + self.page_size) + _COMMIT.size
        if self._journal_head + total > self.journal.capacity:
            raise WalError(
                f"transaction needs {total} journal bytes but only "
                f"{self.journal.capacity - self._journal_head} remain; "
                f"checkpoint (save the database) to reset the journal — "
                f"nothing was written"
            )
        batch = _CommitBatch(
            txn_id, self._journal_head, header + meta_bytes, pages, meta,
            self._undo, total,
        )
        with self._pending_lock:
            for page_no, payload in pages:
                self._pending[page_no] = (txn_id, payload)
        self._next_txn_id = txn_id + 1
        self._journal_head += total
        self._dirty = {}
        self._undo = []
        self._meta_provider = None
        return batch

    @guarded_by("txn")
    def _retract_sealed(self, batch: _CommitBatch) -> None:
        """Unwind a seal whose ``on_sealed`` callback failed.

        Still under the transaction lock, so nothing else sealed after
        this batch: the journal-space reservation and txn id roll
        straight back, the pending pages come out of the overlay, and the
        undo actions unwind the in-memory state.
        """
        self._next_txn_id = batch.txn_id
        self._journal_head = batch.start
        self._clear_pending(batch)
        undo, batch.undo = batch.undo, []
        for action in reversed(undo):
            action()
        metrics.counter("wal.rollbacks").inc()

    # ------------------------------------------------------------------ #
    # group flush (leader/follower commit barrier)
    # ------------------------------------------------------------------ #

    def _await_flush(self, batch: _CommitBatch) -> None:
        """Wait until ``batch`` is flushed — becoming the leader if nobody is.

        Called with no locks held.  The first committer to arrive while
        no flush is running becomes the leader and flushes every batch
        queued so far (and any that arrive while it works); followers
        just wait on the commit barrier.  On a flush failure only the
        batches whose commit record never reached the journal unwind
        (in their own committers' threads); a batch whose commit record
        is already durable stays committed — its committer re-raises
        the device error but the in-memory state keeps the transaction,
        matching what recovery would replay.
        """
        cond = self._commit_cond
        with cond:
            while not batch.done and self._flusher_active:
                cond.wait()
            leader = not batch.done
            if leader:
                self._flusher_active = True
        if leader:
            self._lead_flushes()
        if batch.error is not None:
            if not batch.committed:
                self._undo_batch(batch)
            raise batch.error

    def _lead_flushes(self) -> None:
        """Flush queued batches, group at a time, until the queue is empty."""
        cond = self._commit_cond
        while True:
            with cond:
                group = list(self._commit_queue)
                self._commit_queue.clear()
                if not group:
                    self._flusher_active = False
                    cond.notify_all()
                    return
            error = None
            try:
                # An earlier failure may have left an unstamped hole in
                # the journal; repair it before journaling anything
                # beyond it, or recovery's scan would stop at the hole
                # and silently discard this group's commits.
                self._repair_journal_hole()
                self._flush_group(group)
            # A failure fails the erroring batch and everything after it
            # in the group.  Batches the flush already completed were
            # marked done (success) as each one finished — their journal
            # records are durable and their committers may already have
            # returned.
            except BaseException as exc:  # qblint: disable=no-broad-except
                error = exc
                self._seal_journal_hole(group)
            with cond:
                for b in group:
                    if not b.done:
                        b.error = None if b.flushed else error
                        b.done = True
                if error is not None:
                    self._flusher_active = False
                cond.notify_all()
            if error is not None:
                return

    def _complete_batch(self, batch: _CommitBatch) -> None:
        """Release one fully flushed batch's committer (leader thread)."""
        batch.flushed = True
        with self._commit_cond:
            batch.done = True
            self._commit_cond.notify_all()

    def _seal_journal_hole(self, group: list[_CommitBatch]) -> None:
        """Record — and try to stamp — the torn region of a failed group.

        The hole spans from the first batch whose commit record never
        reached the journal to the end of the group's reserved space
        (later batches may already have sealed past it, so the append
        point cannot simply rewind).  Merging with a previously recorded
        hole keeps the region contiguous: journal space is reserved
        strictly in seal order.
        """
        failed = [b for b in group if not b.committed]
        if not failed:
            return
        start = failed[0].start
        end = group[-1].start + group[-1].total
        if self._repair_pending is not None:
            start = min(start, self._repair_pending[0])
            end = max(end, self._repair_pending[1])
        self._repair_pending = (start, end)
        self._try_stamp_hole()

    def _repair_journal_hole(self) -> None:
        """Stamp any pending hole, or refuse to flush past it.

        Raising here (before the group journals anything) keeps the
        invariant that no commit is acknowledged unless a recovery scan
        can reach its records.
        """
        if self._repair_pending is None:
            return
        self._try_stamp_hole()
        if self._repair_pending is not None:
            start, end = self._repair_pending
            raise WalError(
                f"journal hole [{start}, {end}) left by a failed group "
                f"flush cannot be repaired; commits beyond it would be "
                f"unrecoverable"
            )

    def _try_stamp_hole(self) -> None:
        """Best-effort skip-record write over the recorded hole."""
        start, end = self._repair_pending
        body = _SKIP_MAGIC + struct.pack("<Q", end - start)
        try:
            self.journal.write(start, body + _CRC.pack(zlib.crc32(body)))
        # The journal may be the very device that just failed (or be
        # offline after a simulated crash): keep the hole recorded and
        # let the next leader retry before journaling anything.
        except BaseException:  # qblint: disable=no-broad-except
            return
        self._repair_pending = None
        metrics.counter("wal.holes_repaired").inc()

    def _flush_group(self, group: list[_CommitBatch]) -> None:
        """Journal + apply every batch of one group; one flush for all.

        Batches are processed in txn-id order (the queue preserves seal
        order).  Per batch the journal writes and the apply writes are
        byte-and-call identical to the pre-group-commit code path, so
        fault-injection schedules keyed on write counts replay
        unchanged; the once-per-group ``flush_latency`` sleep models the
        fsync that real group commit amortizes.

        Each batch's commit record is its point of no return: once it is
        on the journal the batch is committed (``batch.committed``) even
        if the apply — or a later batch — fails, because recovery will
        replay it.  An apply failure therefore leaves the batch's pages
        in the pending overlay (readers keep seeing the committed image)
        instead of rolling anything back.  Fully flushed batches release
        their committers immediately, so a failure on a later batch can
        never retroactively "fail" an earlier durable commit.
        """
        for batch in group:
            with trace.span("wal.commit", io=self.journal.stats,
                            txn=batch.txn_id, pages=len(batch.pages)):
                running = zlib.crc32(batch.head_bytes)
                head = batch.start
                self.journal.write(head, batch.head_bytes)
                head += len(batch.head_bytes)
                for page_no, payload in batch.pages:
                    record = _PAGE.pack(
                        page_no, zlib.crc32(bytes(payload))
                    ) + bytes(payload)
                    running = zlib.crc32(record, running)
                    self.journal.write(head, record)
                    head += len(record)
                self.journal.write(
                    head, _COMMIT.pack(_COMMIT_MAGIC, batch.txn_id, running)
                )
            # The commit record is durable: the transaction is committed
            # even if the apply below is cut short (recovery replays it).
            batch.committed = True
            if batch.meta is not None:
                self.last_committed_meta = batch.meta
            metrics.counter("wal.commits").inc()
            metrics.counter("wal.pages_journaled").inc(len(batch.pages))
            metrics.counter("wal.bytes_journaled").inc(batch.total)
            metrics.gauge("wal.journal_bytes").set(batch.start + batch.total)
            with trace.span("wal.apply", io=self.device.stats, txn=batch.txn_id):
                for page_no, payload in batch.pages:
                    self.device.write(page_no * self.page_size, bytes(payload))
            self._clear_pending(batch)
            self._complete_batch(batch)
            self._ship_batch(batch)
        metrics.counter("wal.flushes").inc()
        if len(group) > 1:
            metrics.counter("wal.group_commits").inc()
            metrics.counter("wal.grouped_txns").inc(len(group))
        if self.flush_latency:
            time.sleep(self.flush_latency)

    def add_ship_hook(self, hook) -> None:
        """Register a replication hook: ``hook(batch)`` per committed batch.

        The flush leader calls every hook once per batch, in txn-id
        order, *after* the batch's commit record is durable and its
        committer has been released — so shipping observes exactly the
        committed prefix of the transaction stream and can never delay
        or fail a commit.  Hook exceptions are swallowed (counted as
        ``wal.ship_errors``): a broken replica link must not take down
        the primary's write path; the replica resyncs when it reattaches.
        """
        self._ship_hooks.append(hook)

    def _ship_batch(self, batch: _CommitBatch) -> None:
        """Offer one committed batch to every registered ship hook."""
        for hook in list(self._ship_hooks):
            try:
                hook(batch)
            # Replication is strictly best-effort on the commit path; any
            # failure is the *replica's* problem (resync) — see
            # add_ship_hook's contract.
            except BaseException:  # qblint: disable=no-broad-except
                metrics.counter("wal.ship_errors").inc()

    def _clear_pending(self, batch: _CommitBatch) -> None:
        """Drop ``batch``'s pages from the pending overlay (if still its own).

        A later transaction that rewrote the same page owns the entry
        now; the txn-id check leaves it in place.
        """
        with self._pending_lock:
            for page_no, _ in batch.pages:
                entry = self._pending.get(page_no)
                if entry is not None and entry[0] == batch.txn_id:
                    del self._pending[page_no]

    def _undo_batch(self, batch: _CommitBatch) -> None:
        """Unwind one failed batch's in-memory state (committer thread)."""
        self._clear_pending(batch)
        # The committer no longer holds the txn lock here; take it so the
        # undo actions (which mutate txn-guarded LFM state) cannot race a
        # concurrent transaction.
        with self._txn_lock:
            undo, batch.undo = batch.undo, []
            for action in reversed(undo):
                action()
        metrics.counter("wal.rollbacks").inc()

    def _drain_flushes(self) -> None:
        """Block until no flush is running and no batch is queued.

        Every queued batch has a committer inside :meth:`_await_flush`
        that will lead its own flush if needed, so this always
        terminates.  Callers that need the journal/device quiescent
        (checkpoint, dump, close) drain first.
        """
        with self._commit_cond:
            while self._commit_queue or self._flusher_active:
                self._commit_cond.wait()

    def reset_journal(self) -> None:
        """Invalidate the journal (after the catalog checkpointed elsewhere).

        Writes a checkpoint record at offset 0 carrying the newest
        committed txn id.  Stale transaction records beyond it stay on the
        device, but recovery seeds its monotonicity floor from the
        checkpoint, so they can never be replayed — even after a restart
        that would otherwise restart txn ids at 1 and make an old id look
        monotonically fresh again.
        """
        # Hold the transaction lock: a checkpoint racing another thread's
        # open transaction waits for its commit instead of moving the
        # append point underneath it.  Re-entrant, so a reset attempted
        # from *inside* a transaction still reaches the depth check below.
        with self._txn_lock:
            if self.in_transaction:
                raise WalError("cannot reset the journal inside a transaction")
            # Quiesce in-flight group flushes before moving the append
            # point: holding the txn lock means no *new* batch can seal
            # while we wait, and every already-sealed batch has a
            # committer driving it to completion.
            self._drain_flushes()
            last_id = self._next_txn_id - 1
            body = _CKPT_MAGIC + struct.pack("<Q", last_id)
            self.journal.write(0, body + _CRC.pack(zlib.crc32(body)))
            self._journal_head = _CKPT.size
            # Any unstamped hole lies in the invalidated epoch now: the
            # checkpoint's txn-id floor already stops the scan before it.
            self._repair_pending = None
            metrics.gauge("wal.journal_bytes").set(self._journal_head)

    # ------------------------------------------------------------------ #
    # device duck interface
    # ------------------------------------------------------------------ #

    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.capacity:
            raise StorageError(
                f"access [{offset}, {offset + length}) outside device of "
                f"capacity {self.capacity}"
            )

    def _dirty_page(self, number: int) -> bytearray:
        """The transaction-local image of one page, faulting it in on demand.

        The fill reads through the pending overlay: a page committed by
        an earlier transaction whose grouped apply has not landed yet
        must seed this transaction's read-modify-write with the
        *committed* image, not the stale device bytes.  The overlay is
        snapshotted *before* the device read — a concurrent flush can
        apply the page and clear its entry mid-read, and patching from
        the pre-read snapshot is what keeps the committed image either
        way (no new entry can appear: sealing needs the txn lock this
        thread holds).
        """
        page = self._dirty.get(number)
        if page is None:
            start = number * self.page_size
            snap = self._snapshot_pending()
            page = bytearray(self.device.read(start, self.page_size))
            if snap is not None and number in snap:
                page[:] = snap[number]
            self._dirty[number] = page
        return page

    def write(self, offset: int, data: bytes) -> None:
        """Buffer a write into the open transaction (auto-commit outside one).

        The transaction join is unconditional: outside any scope the write
        auto-commits; inside one it joins (re-entrant lock).  A write
        racing *another thread's* open transaction blocks on the
        transaction lock instead of interleaving its pages into that
        thread's buffer.
        """
        self._check_range(offset, len(data))
        with self.transaction():
            self._buffer_write(offset, data)

    @guarded_by("txn")
    def _buffer_write(self, offset: int, data: bytes) -> None:
        """Stage one write in the open transaction's dirty-page buffer."""
        pages = _page_intervals(np.asarray([offset]), np.asarray([offset + len(data)]))
        with self._stats_lock:
            self.stats.add_write(pages.count, pages.run_count, len(data))
        if not data:
            return
        first = offset // self.page_size
        last = (offset + len(data) - 1) // self.page_size
        cursor = 0
        for number in range(first, last + 1):
            page_start = number * self.page_size
            lo = max(offset, page_start) - page_start
            hi = min(offset + len(data), page_start + self.page_size) - page_start
            if lo == 0 and hi == self.page_size and number not in self._dirty:
                # Full-page overwrite: no read-modify-write fill needed.
                self._dirty[number] = bytearray(data[cursor:cursor + self.page_size])
            else:
                self._dirty_page(number)[lo:hi] = data[cursor:cursor + (hi - lo)]
            cursor += hi - lo

    def _overlay_from(self, blob: bytearray, start: int,
                      pages: dict) -> bytearray:
        """Patch a byte range with page images from ``pages`` (page_no keyed)."""
        stop = start + len(blob)
        first = start // self.page_size
        last = (stop - 1) // self.page_size if stop > start else first
        for number in range(first, last + 1):
            page = pages.get(number)
            if page is None:
                continue
            page_start = number * self.page_size
            lo = max(start, page_start)
            hi = min(stop, page_start + self.page_size)
            blob[lo - start:hi - start] = page[lo - page_start:hi - page_start]
        return blob

    def _overlay(self, blob: bytearray, start: int) -> bytearray:
        """Patch a byte range read from the device with dirty-page contents."""
        return self._overlay_from(blob, start, self._dirty)

    def _snapshot_pending(self) -> dict[int, bytearray] | None:
        """Copy the pending overlay map (page_no -> committed payload).

        Taken *before* a device read, so the committed image of any page
        the flush leader applies-and-clears while the read is in flight
        still patches the result.  Payloads are immutable after seal, so
        holding references (not copies) is safe.
        """
        if not self._pending:
            return None
        with self._pending_lock:
            if not self._pending:
                return None
            return {number: entry[1]
                    for number, entry in self._pending.items()}

    def _overlay_pending(self, blob: bytearray, start: int) -> bytearray:
        """Patch a byte range with committed-but-not-yet-applied pages."""
        stop = start + len(blob)
        first = start // self.page_size
        last = (stop - 1) // self.page_size if stop > start else first
        with self._pending_lock:
            if not self._pending:
                return blob
            for number in range(first, last + 1):
                entry = self._pending.get(number)
                if entry is None:
                    continue
                page = entry[1]
                page_start = number * self.page_size
                lo = max(start, page_start)
                hi = min(stop, page_start + self.page_size)
                blob[lo - start:hi - start] = page[lo - page_start:hi - page_start]
        return blob

    def _sees_own_writes(self) -> bool:
        """Is the calling thread the owner of the open transaction?

        Only the owning thread overlays the uncommitted dirty buffer
        onto its reads: MVCC snapshot readers running concurrently must
        see committed state only, never another thread's in-flight
        transaction.
        """
        return bool(self._dirty) and self._owner == threading.get_ident()

    def read(self, offset: int, length: int) -> bytes:
        """Read through the log: committed state, plus — for the thread
        that owns the open transaction — its own uncommitted writes.

        The pending overlay is snapshotted *before* the device read and
        re-checked after: a concurrent group flush can apply a page and
        clear its overlay entry between the two, and a device read that
        captured the pre-apply bytes must still be patched with the
        committed image (MVCC snapshot readers pinned to the published
        version would otherwise observe pre-commit state).
        """
        snap = self._snapshot_pending() if length else None
        data = self.device.read(offset, length)
        self._account_read(np.asarray([offset]), np.asarray([offset + length]))
        if not length:
            return data
        blob = None
        if snap is not None:
            blob = self._overlay_from(bytearray(data), offset, snap)
        if self._pending:
            # Entries sealed while the device read was in flight carry
            # newer committed images and override the snapshot's.
            blob = self._overlay_pending(
                blob if blob is not None else bytearray(data), offset
            )
        if self._sees_own_writes():
            blob = self._overlay(blob if blob is not None else bytearray(data), offset)
        return bytes(blob) if blob is not None else data

    def _account_read(self, starts: np.ndarray, stops: np.ndarray) -> None:
        pages = _page_intervals(starts, stops)
        nbytes = int(np.maximum(stops - starts, 0).sum())
        with self._stats_lock:
            self.stats.add_read(pages.count, pages.run_count, nbytes)

    def read_ranges(self, starts, stops) -> bytes:
        """Scattered read with overlays (page-deduplicated).

        Same pre-read pending snapshot as :meth:`read`: a grouped apply
        racing this read cannot strip the committed overlay from bytes
        captured before it landed.
        """
        starts = np.asarray(starts, dtype=np.int64)
        stops = np.asarray(stops, dtype=np.int64)
        snap = self._snapshot_pending()
        data = self.device.read_ranges(starts, stops)  # validates + accounts
        self._account_read(starts, stops)
        pending = bool(self._pending)
        own = self._sees_own_writes()
        if snap is None and not pending and not own:
            return data
        out = bytearray(data)
        cursor = 0
        for start, stop in zip(starts.tolist(), stops.tolist()):
            if stop <= start:
                continue
            seg = bytearray(out[cursor:cursor + (stop - start)])
            if snap is not None:
                self._overlay_from(seg, start, snap)
            if pending:
                self._overlay_pending(seg, start)
            if own:
                self._overlay(seg, start)
            out[cursor:cursor + (stop - start)] = seg
            cursor += stop - start
        return bytes(out)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def dump(self, path):
        """Write the committed data image to a file."""
        if self.in_transaction:
            raise WalError("cannot dump the device inside an open transaction")
        self._drain_flushes()
        return self.device.dump(path)

    def close(self) -> None:
        """Close the journal and the underlying data device."""
        if self.in_transaction:
            raise WalError("cannot close the WAL inside an open transaction")
        self._drain_flushes()
        self.journal.close()
        self.device.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = f"txn depth {self._depth}" if self._depth else "idle"
        return (
            f"WriteAheadLog({self.device!r}, journal={self.journal.capacity} "
            f"bytes, {state})"
        )
