"""The Long Field Manager (Lehman & Lindsay, VLDB'89; §5.1 of the paper).

Stores each large object (REGION, VOLUME, mesh, raw study) as a *long
field*: one buddy-allocated extent on the block device.  Supports "fast
random I/O to arbitrary pieces of long fields directly to and from client
memory without internal buffering" — the scattered-range read is the
primitive QBISM's early spatial filtering rests on: EXTRACT_DATA reads only
the byte ranges of the requested runs, and the device's page accounting
reports how many 4 KiB I/Os that took.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import LongFieldError
from repro.obs import metrics, trace
from repro.storage.buddy import BuddyAllocator
from repro.storage.device import BlockDevice, IOStats

__all__ = ["LongFieldManager", "LongField", "FieldTableView"]


@dataclass(frozen=True)
class LongField:
    """Handle to a stored long field.  Opaque outside the storage layer."""

    field_id: int
    length: int

    def __repr__(self) -> str:
        return f"LongField(id={self.field_id}, {self.length} bytes)"


class LongFieldManager:
    """Creates, reads, and deletes long fields on a :class:`BlockDevice`."""

    def __init__(self, device: BlockDevice):
        self.device = device
        self._allocator = BuddyAllocator(device.capacity, device.page_size)
        # The field table and id counter commit atomically with the data
        # pages (journaled as transaction metadata), so mutations must
        # stay inside the transaction scope that journals them.
        self._fields: dict[int, tuple[int, int]] = {}  # id -> (offset, length); guarded_by: txn
        self._next_id = 1  # guarded_by: txn
        # MVCC hook: when set (by Database), delete() hands the extent
        # free to ``retire_extent(free_fn)`` instead of freeing eagerly,
        # so pinned snapshot readers can keep reading the old bytes; the
        # hook returns a token with ``cancel()`` for rollback.
        self.retire_extent = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def _register_undo(self, undo) -> bool:
        """Hand ``undo`` to a transactional device, if there is one.

        Under a write-ahead log the device runs it when the *outermost*
        transaction rolls back — which may be an enclosing
        ``Database.transaction()`` scope that aborts long after this
        mutation's own method returned.  Returns whether the device took
        ownership; on a raw device the caller must unwind by hand.
        """
        if getattr(self.device, "supports_rollback", False):
            self.device.on_rollback(undo)
            return True
        return False

    def create(self, data: bytes) -> LongField:
        """Store ``data`` as a new long field in one contiguous extent.

        The extent write and the field-table update are one transaction on
        the device: under a write-ahead log either both are durable or
        neither is, and a rollback (of this scope or an enclosing one)
        also unwinds the in-memory field table and allocation.  On a raw
        device the scope is a no-op and behaviour (including Table 3/4 I/O
        accounting) is unchanged.
        """
        if not data:
            raise LongFieldError("long fields must be non-empty")
        offset = self._allocator.alloc(len(data))
        field_id = self._next_id

        def undo() -> None:
            self._fields.pop(field_id, None)
            self._next_id = field_id
            self._allocator.free(offset)

        deferred = False
        try:
            with self.device.transaction(meta_provider=self.export_state):
                deferred = self._register_undo(undo)
                # Register the field before commit so the metadata snapshot
                # journaled with the commit record already includes it.
                self._next_id = field_id + 1
                self._fields[field_id] = (offset, len(data))
                with trace.span("lfm.create", io=self.device.stats, bytes=len(data)):
                    before = self.device.stats.pages_written
                    self.device.write(offset, data)
        # Cleanup-and-reraise: even SimulatedCrash must unwind the
        # in-memory state.
        except BaseException:  # qblint: disable=no-broad-except
            if not deferred:
                undo()
            raise
        metrics.counter("lfm.writes").inc()
        metrics.counter("lfm.pages_written").inc(
            self.device.stats.pages_written - before
        )
        metrics.counter("lfm.bytes_written").inc(len(data))
        return LongField(field_id, len(data))

    def delete(self, field: LongField) -> None:
        """Free a long field's extent; the handle becomes invalid.

        A metadata-only transaction: under a WAL the new field table is
        journaled with the commit record so the deletion is durable, and a
        rollback of the enclosing scope restores the field.

        With an MVCC ``retire_extent`` hook installed, the extent is not
        freed here: pinned snapshot versions may still reference its
        bytes, so the free is deferred until every version published
        before this delete has been released.  Rollback cancels the
        deferred free and restores the field entry — the extent was never
        deallocated, so no re-carve is needed.
        """
        offset, length = self._entry(field)
        retire = self.retire_extent
        token = None

        def undo() -> None:
            if token is not None:
                token.cancel()
            elif retire is None:
                self._allocator.carve(offset, length)
            self._fields[field.field_id] = (offset, length)

        deferred = False
        try:
            with self.device.transaction(meta_provider=self.export_state):
                deferred = self._register_undo(undo)
                del self._fields[field.field_id]
                if retire is None:
                    self._allocator.free(offset)
                else:
                    token = retire(lambda: self._allocator.free(offset))
        # Cleanup-and-reraise: even SimulatedCrash must unwind the
        # in-memory state.
        except BaseException:  # qblint: disable=no-broad-except
            if not deferred:
                undo()
            raise

    def _entry(self, field: LongField) -> tuple[int, int]:
        try:
            return self._fields[field.field_id]
        except KeyError:
            raise LongFieldError(f"unknown long field id {field.field_id}") from None

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    def read(self, field: LongField, offset: int = 0, length: int | None = None) -> bytes:
        """Read a contiguous piece of a long field (whole field by default)."""
        return self._read_entry(self._entry(field), offset, length)

    def _read_entry(
        self, entry: tuple[int, int], offset: int, length: int | None
    ) -> bytes:
        """The contiguous-read body, parameterized over the field entry.

        Split out so :class:`FieldTableView` can run the identical I/O and
        accounting path against a snapshot's field table.
        """
        base, total = entry
        if length is None:
            length = total - offset
        if offset < 0 or length < 0 or offset + length > total:
            raise LongFieldError(
                f"read [{offset}, {offset + length}) outside long field of "
                f"{total} bytes"
            )
        with trace.span("lfm.read", io=self.device.stats, bytes=length):
            before = self.device.stats.pages_read
            data = self.device.read(base + offset, length)
        metrics.counter("lfm.reads").inc()
        metrics.counter("lfm.pages_read").inc(self.device.stats.pages_read - before)
        metrics.counter("lfm.bytes_read").inc(len(data))
        return data

    def read_ranges(self, field: LongField, starts: np.ndarray, stops: np.ndarray) -> bytes:
        """Scattered read of byte ranges within a long field, page-deduplicated.

        ``starts``/``stops`` are half-open byte offsets relative to the
        field.  This is the EXTRACT_DATA access path: the run list of a
        REGION maps directly to these ranges.
        """
        return self._read_ranges_entry(self._entry(field), starts, stops)

    def _read_ranges_entry(
        self, entry: tuple[int, int], starts: np.ndarray, stops: np.ndarray
    ) -> bytes:
        """The scattered-read body, parameterized over the field entry."""
        base, total = entry
        starts = np.asarray(starts, dtype=np.int64)
        stops = np.asarray(stops, dtype=np.int64)
        if starts.size:
            if np.any(stops < starts):
                bad = int(np.argmax(stops < starts))
                raise LongFieldError(
                    f"inverted range [{int(starts[bad])}, {int(stops[bad])}) "
                    "in scattered read"
                )
            if starts.min() < 0 or stops.max() > total:
                raise LongFieldError("scattered read outside long field bounds")
        with trace.span("lfm.read_ranges", io=self.device.stats, ranges=starts.size):
            before = self.device.stats.pages_read
            data = self.device.read_ranges(base + starts, base + stops)
        metrics.counter("lfm.reads").inc()
        metrics.counter("lfm.pages_read").inc(self.device.stats.pages_read - before)
        metrics.counter("lfm.bytes_read").inc(len(data))
        return data

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    # ------------------------------------------------------------------ #
    # persistence support
    # ------------------------------------------------------------------ #

    def export_state(self) -> dict:
        """Field table + id counter, JSON-serializable (for save/load)."""
        return {
            "next_id": self._next_id,
            "fields": {
                str(field_id): [offset, length]
                for field_id, (offset, length) in self._fields.items()
            },
        }

    @classmethod
    def restore(cls, device: BlockDevice, state: dict) -> "LongFieldManager":
        """Rebuild an LFM over an existing device from :meth:`export_state`.

        The allocator is reconstructed by carving every recorded extent
        back out of the arena; the byte contents are whatever the device
        already holds.
        """
        lfm = cls(device)
        lfm._next_id = int(state["next_id"])
        for field_id, (offset, length) in state["fields"].items():
            lfm._allocator.carve(int(offset), int(length))
            lfm._fields[int(field_id)] = (int(offset), int(length))
        return lfm

    def handle(self, field_id: int) -> LongField:
        """Re-materialize a handle from a persisted field id."""
        try:
            _, length = self._fields[field_id]
        except KeyError:
            raise LongFieldError(f"unknown long field id {field_id}") from None
        return LongField(field_id, length)

    @property
    def stats(self) -> IOStats:
        """The device's cumulative I/O counters."""
        return self.device.stats

    @property
    def field_count(self) -> int:
        """Number of long fields currently stored."""
        return len(self._fields)

    @property
    def stored_bytes(self) -> int:
        """Sum of logical long-field lengths (not allocation sizes)."""
        return sum(length for _, length in self._fields.values())

    @property
    def allocated_bytes(self) -> int:
        """Bytes reserved on the device, including buddy rounding."""
        return self._allocator.allocated_bytes

    def __repr__(self) -> str:
        return (
            f"LongFieldManager({self.field_count} fields, "
            f"{self.stored_bytes} logical / {self.allocated_bytes} allocated bytes)"
        )


class FieldTableView:
    """A read-only LFM facade bound to one MVCC version's field table.

    Snapshot SELECTs get one of these as their ``ctx.lfm``: reads resolve
    field ids against the frozen table (so a field deleted *after* the
    version was published still resolves, its extent kept alive by the
    deferred-free protocol) and then run the manager's own I/O and
    accounting path.  Mutations are rejected — a writing UDF inside a
    pinned-snapshot SELECT would bypass the write lock entirely.
    """

    __slots__ = ("_lfm", "_fields")

    def __init__(self, lfm: LongFieldManager, fields: dict[int, tuple[int, int]]):
        self._lfm = lfm
        self._fields = fields

    def _entry(self, field: LongField) -> tuple[int, int]:
        try:
            return self._fields[field.field_id]
        except KeyError:
            raise LongFieldError(f"unknown long field id {field.field_id}") from None

    def read(self, field: LongField, offset: int = 0, length: int | None = None) -> bytes:
        """Read a contiguous piece of a long field from the snapshot."""
        return self._lfm._read_entry(self._entry(field), offset, length)

    def read_ranges(self, field: LongField, starts: np.ndarray, stops: np.ndarray) -> bytes:
        """Scattered read of byte ranges, resolved against the snapshot."""
        return self._lfm._read_ranges_entry(self._entry(field), starts, stops)

    def handle(self, field_id: int) -> LongField:
        """Re-materialize a handle from a field id known to the snapshot."""
        try:
            _, length = self._fields[field_id]
        except KeyError:
            raise LongFieldError(f"unknown long field id {field_id}") from None
        return LongField(field_id, length)

    def create(self, data: bytes) -> LongField:
        """Refused: the snapshot view is read-only."""
        raise LongFieldError(
            "cannot create long fields through a read-only snapshot view"
        )

    def delete(self, field: LongField) -> None:
        """Refused: the snapshot view is read-only."""
        raise LongFieldError(
            "cannot delete long fields through a read-only snapshot view"
        )

    @property
    def device(self) -> BlockDevice:
        """The underlying device (shared with the live manager)."""
        return self._lfm.device

    @property
    def stats(self) -> IOStats:
        """The device's cumulative I/O counters (shared, live)."""
        return self._lfm.device.stats

    @property
    def field_count(self) -> int:
        """Number of long fields visible in this snapshot."""
        return len(self._fields)

    @property
    def stored_bytes(self) -> int:
        """Sum of logical long-field lengths visible in this snapshot."""
        return sum(length for _, length in self._fields.values())

    def __repr__(self) -> str:
        return f"FieldTableView({self.field_count} fields)"
