"""The paper's contribution, assembled: the QBISM system and its timing model."""

from __future__ import annotations

from repro.core.system import QbismSystem, QueryOutcome
from repro.core.timing import Table4Row, TimingBreakdown, format_table3, format_table4
from repro.medical.server import QuerySpec

__all__ = [
    "QbismSystem",
    "QueryOutcome",
    "QuerySpec",
    "TimingBreakdown",
    "Table4Row",
    "format_table3",
    "format_table4",
]
