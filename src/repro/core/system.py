"""The assembled QBISM system (Figures 7 and 8).

:class:`QbismSystem` wires every component together the way the paper's
testbed does: the Starburst-like engine and MedicalServer share a process
over the Long Field Manager and block device (machine 1); query results
ship through the RPC channel to the DX executive (machine 2), which imports
and renders them.  :meth:`QbismSystem.query` runs one user query end to end
and returns the data, the rendered image, and a Table 3 timing row.

``build_demo`` constructs a fully loaded instance from synthetic data — the
equivalent of the paper's pre-warped, pre-banded UCLA database.
"""

from __future__ import annotations

from repro.errors import ValidationError

from dataclasses import dataclass, field

import numpy as np

from repro.db.database import Database
from repro.db.spatial import register_spatial_functions
from repro.medical.entities import Atlas
from repro.medical.loader import MedicalLoader
from repro.medical.schema import create_medical_schema
from repro.medical.server import MedicalQueryResult, MedicalServer, QuerySpec
from repro.net.costmodel import CostModel1994
from repro.net.rpc import RpcChannel
from repro.core.timing import Table4Row, TimingBreakdown
from repro.regions import Region
from repro.storage.device import PAGE_SIZE, BlockDevice
from repro.storage.lfm import LongFieldManager
from repro.synthdata.phantom import BrainPhantom, build_phantom
from repro.synthdata.studies import generate_mri_studies, generate_pet_studies
from repro.viz.dx import DataExplorer

__all__ = ["QbismSystem", "QueryOutcome"]


@dataclass
class QueryOutcome:
    """Everything produced by one end-to-end query."""

    result: MedicalQueryResult
    timing: TimingBreakdown
    image: np.ndarray | None = None

    @property
    def data(self):
        """The query's result payload."""
        return self.result.data


@dataclass
class QbismSystem:
    """The full prototype: storage + DBMS + MedicalServer + network + DX."""

    device: BlockDevice
    lfm: LongFieldManager
    db: Database
    server: MedicalServer
    rpc: RpcChannel
    dx: DataExplorer
    cost_model: CostModel1994
    atlas: Atlas
    phantom: BrainPhantom
    pet_study_ids: list[int] = field(default_factory=list)
    mri_study_ids: list[int] = field(default_factory=list)
    #: seed the phantom was built with, recorded so save/load can re-derive it
    _phantom_seed: int = 1994

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build_demo(
        cls,
        seed: int = 1994,
        grid_side: int = 128,
        n_pet: int = 5,
        n_mri: int = 3,
        band_encodings: tuple[str, ...] = ("hilbert-naive",),
        device_capacity: int | None = None,
        device_path=None,
        use_ground_truth_warp: bool = True,
        wal: bool = False,
    ) -> "QbismSystem":
        """Build and populate a complete system from synthetic data.

        ``grid_side = 128`` reproduces the paper's scale (2M voxels per
        warped study); tests use 32 for speed.  With
        ``use_ground_truth_warp`` the loader uses each study's known
        misalignment (the "semi-automatic" path); otherwise it runs
        moment-based registration.

        With ``wal=True`` the block device is wrapped in a write-ahead log
        over an in-memory journal, so every load and query runs through
        crash-safe transactions; journal I/O is accounted separately and
        the Table 3/4 LFM page counts are unchanged.
        """
        if grid_side < 8 or grid_side & (grid_side - 1):
            raise ValidationError(
                f"grid_side must be a power of two >= 8 (VOLUMEs are stored on "
                f"power-of-two cubes), got {grid_side}"
            )
        phantom = build_phantom(grid_side=grid_side, seed=seed)
        pet = generate_pet_studies(phantom, count=n_pet, seed=seed + 1)
        mri = generate_mri_studies(phantom, count=n_mri, seed=seed + 2)

        if device_capacity is None:
            device_capacity = _estimate_capacity(grid_side, pet, mri, band_encodings)
        device = BlockDevice(device_capacity, path=device_path)
        if wal:
            from repro.storage.wal import WriteAheadLog

            journal = BlockDevice(min(device_capacity, 64 << 20))
            device = WriteAheadLog(device, journal, recover=False)
        lfm = LongFieldManager(device)
        db = Database(lfm=lfm)
        register_spatial_functions(db)
        create_medical_schema(db)

        loader = MedicalLoader(db, lfm, encodings=band_encodings)
        atlas = loader.load_atlas(phantom)
        reference = None
        if not use_ground_truth_warp:
            reference = (phantom.anatomy * 255).astype(np.uint8)

        rng = np.random.default_rng(seed + 3)
        pet_ids, mri_ids = [], []
        for i, study in enumerate(pet + mri):
            patient = loader.register_patient(
                name=f"subject-{i + 1:02d}",
                birth_date=f"{1930 + int(rng.integers(0, 45))}-01-01",
                sex="F" if rng.integers(0, 2) else "M",
                age=int(rng.integers(20, 75)),
            )
            study_id = loader.load_study(
                study.data,
                study.modality,
                patient.patient_id,
                atlas,
                phantom.grid,
                warp=study.patient_to_atlas if use_ground_truth_warp else None,
                registration_reference=reference,
            )
            (pet_ids if study.modality == "PET" else mri_ids).append(study_id)

        # §7 spatial indexing: Hilbert-packed R-trees over the stored
        # REGION columns plus optimizer statistics, so the cost-based
        # planner prunes with index probes instead of query shape.
        db.execute("create spatial index sxAtlasRegion on atlasStructure (region)")
        db.execute("create spatial index sxBandRegion on intensityBand (region)")
        db.execute("analyze")

        cost_model = CostModel1994()
        return cls(
            device=device,
            lfm=lfm,
            db=db,
            server=MedicalServer(db),
            rpc=RpcChannel(),
            dx=DataExplorer(cost_model),
            cost_model=cost_model,
            atlas=atlas,
            phantom=phantom,
            pet_study_ids=pet_ids,
            mri_study_ids=mri_ids,
            _phantom_seed=seed,
        )

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #

    def save(self, path) -> None:
        """Persist the whole system to a directory.

        The database (catalog + device image) is saved via
        :func:`repro.db.persist.save_database`; the deterministic build
        parameters needed to re-derive the phantom and the study-id lists
        go into ``system.json``.
        """
        import json
        from pathlib import Path

        from repro.db.persist import save_database

        path = Path(path)
        save_database(self.db, path)
        meta = {
            "grid_side": self.phantom.grid.shape[0],
            "phantom_seed": self._phantom_seed,
            "pet_study_ids": self.pet_study_ids,
            "mri_study_ids": self.mri_study_ids,
            "atlas": {
                "atlas_id": self.atlas.atlas_id,
                "name": self.atlas.name,
                "demographic_group": self.atlas.demographic_group,
                "resolution": self.atlas.resolution,
                "origin": list(self.atlas.origin),
                "voxel_size": list(self.atlas.voxel_size),
            },
        }
        (path / "system.json").write_text(json.dumps(meta))

    @classmethod
    def load(cls, path, in_memory: bool = True) -> "QbismSystem":
        """Reopen a system saved with :meth:`save`."""
        import json
        from pathlib import Path

        from repro.db.persist import load_database

        path = Path(path)
        meta = json.loads((path / "system.json").read_text())
        db = load_database(path, in_memory=in_memory)
        register_spatial_functions(db)
        phantom = build_phantom(
            grid_side=meta["grid_side"], seed=meta["phantom_seed"]
        )
        atlas_meta = meta["atlas"]
        atlas = Atlas(
            atlas_id=atlas_meta["atlas_id"],
            name=atlas_meta["name"],
            demographic_group=atlas_meta["demographic_group"],
            resolution=atlas_meta["resolution"],
            origin=tuple(atlas_meta["origin"]),
            voxel_size=tuple(atlas_meta["voxel_size"]),
        )
        cost_model = CostModel1994()
        system = cls(
            device=db.lfm.device,
            lfm=db.lfm,
            db=db,
            server=MedicalServer(db),
            rpc=RpcChannel(),
            dx=DataExplorer(cost_model),
            cost_model=cost_model,
            atlas=atlas,
            phantom=phantom,
            pet_study_ids=list(meta["pet_study_ids"]),
            mri_study_ids=list(meta["mri_study_ids"]),
        )
        system._phantom_seed = meta["phantom_seed"]
        return system

    # ------------------------------------------------------------------ #
    # end-to-end queries (Table 3)
    # ------------------------------------------------------------------ #

    def query(
        self,
        spec: QuerySpec,
        render_mode: str | None = "mip",
        label: str | None = None,
        flush_cache: bool = True,
    ) -> QueryOutcome:
        """Run one user query through the full pipeline of Figure 7."""
        if flush_cache:
            self.dx.flush_cache()  # the per-run flush of §6.1
        result = self.server.execute(spec)
        transfer = self.rpc.send(result.payload)
        obj = self.dx.import_volume(result.payload, cache_key=spec.label())
        image = None
        render_seconds = 0.0
        if render_mode is not None:
            image, render_seconds = self.dx.render(obj, mode=render_mode)
        model = self.cost_model
        timing = TimingBreakdown(
            label=label or spec.label(),
            runs=result.data.region.run_count,
            voxels=result.data.voxel_count,
            lfm_page_ios=result.io.pages_read if result.io else 0,
            starburst_cpu=model.starburst_cpu_seconds(result.work, result.io),
            starburst_real=model.starburst_real_seconds(result.work, result.io),
            net_messages=transfer.messages,
            net_seconds=model.network_seconds(transfer),
            import_cpu=obj.import_cpu_seconds,
            import_real=obj.import_real_seconds,
            render_seconds=render_seconds,
            other_seconds=model.other_seconds,
        )
        return QueryOutcome(result=result, timing=timing, image=image)

    # Convenience wrappers matching the paper's query classes (§6.2).

    def query_full_study(self, study_id: int, **kwargs) -> QueryOutcome:
        """Q1: "show a full PET study"."""
        return self.query(QuerySpec(study_id=study_id), **kwargs)

    def query_box(self, study_id: int, lower, upper, **kwargs) -> QueryOutcome:
        """Q2-style spatial query on a rectangular solid."""
        return self.query(QuerySpec(study_id=study_id, box=(tuple(lower), tuple(upper))), **kwargs)

    def query_structure(self, study_id: int, structure_name: str, **kwargs) -> QueryOutcome:
        """Q3/Q4-style spatial query on an anatomical structure."""
        return self.query(QuerySpec(study_id=study_id, structures=(structure_name,)), **kwargs)

    def query_band(self, study_id: int, low: int, high: int, **kwargs) -> QueryOutcome:
        """Q5-style attribute query on an intensity range."""
        return self.query(QuerySpec(study_id=study_id, intensity_range=(low, high)), **kwargs)

    def query_mixed(self, study_id: int, structure_name: str, low: int, high: int, **kwargs) -> QueryOutcome:
        """Q6-style mixed query: intensity range inside a structure."""
        return self.query(
            QuerySpec(
                study_id=study_id,
                structures=(structure_name,),
                intensity_range=(low, high),
            ),
            **kwargs,
        )

    # ------------------------------------------------------------------ #
    # multi-study queries (Table 4)
    # ------------------------------------------------------------------ #

    def multi_study_band(
        self, study_ids: list[int], low: int, high: int, encoding: str = "hilbert-naive"
    ) -> tuple[Region, Table4Row]:
        """The Table 4 experiment under one REGION encoding."""
        region, query_result = self.server.band_consistency_region(
            study_ids, low, high, encoding
        )
        io = query_result.io
        work = query_result.work
        row = Table4Row(
            encoding=encoding,
            lfm_page_ios=io.pages_read if io else 0,
            starburst_cpu=self.cost_model.starburst_cpu_seconds(work, io),
            starburst_real=self.cost_model.starburst_real_seconds(work, io),
            result_runs=region.run_count,
            result_voxels=region.voxel_count,
        )
        return region, row

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def study_ids(self) -> list[int]:
        """Every loaded study id (PET first, then MRI)."""
        return self.pet_study_ids + self.mri_study_ids

    def structure_names(self) -> list[str]:
        """Names of every atlas structure in the phantom."""
        return self.phantom.structure_names

    def __repr__(self) -> str:
        return (
            f"QbismSystem(atlas={self.atlas.name!r}, grid={self.phantom.grid.shape}, "
            f"{len(self.pet_study_ids)} PET + {len(self.mri_study_ids)} MRI studies)"
        )


def _estimate_capacity(grid_side: int, pet, mri, band_encodings) -> int:
    """A device size comfortably holding raw + warped + band data."""
    raw_bytes = sum(s.nbytes for s in pet + mri)
    n_studies = len(pet) + len(mri)
    warped_bytes = n_studies * (grid_side**3 + PAGE_SIZE)
    # Bands, structures, meshes: proportional to warped data, generously.
    extra = warped_bytes * (1 + len(band_encodings))
    total = 2 * (raw_bytes + warped_bytes + extra) + (32 << 20)
    capacity = 1 << (total - 1).bit_length()
    return capacity
