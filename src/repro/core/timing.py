"""Timing breakdowns mirroring the paper's Tables 3 and 4.

A :class:`TimingBreakdown` is one row of Table 3: result size, LFM disk
I/Os, Starburst cpu/real, network messages/answer time, DX import and
render, "other", and the total.  The I/O and size columns come from real
measurements of this implementation; elapsed-time columns come from the
calibrated :class:`~repro.net.costmodel.CostModel1994`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TimingBreakdown", "Table4Row", "format_table3", "format_table4"]


@dataclass(frozen=True)
class TimingBreakdown:
    """One Table 3 row."""

    label: str
    #: result size
    runs: int
    voxels: int
    #: measured storage activity
    lfm_page_ios: int
    #: modeled Starburst / MedicalServer times
    starburst_cpu: float
    starburst_real: float
    #: measured message count, modeled answer time
    net_messages: int
    net_seconds: float
    #: modeled DX executive times
    import_cpu: float
    import_real: float
    render_seconds: float
    #: atlas query + SQL compile etc.
    other_seconds: float

    @property
    def total_seconds(self) -> float:
        """End-to-end elapsed time, summing the independent real components."""
        return (
            self.starburst_real
            + self.net_seconds
            + self.import_real
            + self.render_seconds
            + self.other_seconds
        )

    def as_row(self) -> tuple:
        """The row as display-ready values (rounded)."""
        return (
            self.label,
            self.runs,
            self.voxels,
            self.lfm_page_ios,
            round(self.starburst_cpu, 2),
            round(self.starburst_real, 1),
            self.net_messages,
            round(self.net_seconds, 1),
            round(self.import_cpu, 2),
            round(self.import_real, 1),
            round(self.render_seconds, 0),
            round(self.other_seconds, 1),
            round(self.total_seconds, 0),
        )


@dataclass(frozen=True)
class Table4Row:
    """One Table 4 row: a multi-study intersection under one encoding."""

    encoding: str
    lfm_page_ios: int
    starburst_cpu: float
    starburst_real: float
    result_runs: int
    result_voxels: int

    def as_row(self) -> tuple:
        """The Table 4 report columns as a tuple."""
        return (
            self.encoding,
            self.lfm_page_ios,
            round(self.starburst_cpu, 2),
            round(self.starburst_real, 1),
        )


_TABLE3_HEADER = (
    "query", "h-runs", "voxels", "LFM I/Os", "SB cpu", "SB real",
    "msgs", "net s", "imp cpu", "imp real", "render s", "other s", "total s",
)

_TABLE4_HEADER = ("encoding", "LFM I/Os", "cpu s", "real s")


def _format_rows(header: tuple, rows: list[tuple]) -> str:
    table = [tuple(str(c) for c in header)] + [tuple(str(c) for c in row) for row in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(header))]
    lines = []
    for r, row in enumerate(table):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_table3(breakdowns: list[TimingBreakdown]) -> str:
    """Render Table 3 rows as an aligned text table."""
    return _format_rows(_TABLE3_HEADER, [b.as_row() for b in breakdowns])


def format_table4(rows: list[Table4Row]) -> str:
    """Render Table 4 rows as an aligned text table."""
    return _format_rows(_TABLE4_HEADER, [r.as_row() for r in rows])
