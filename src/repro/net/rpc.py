"""RPC transport between the MedicalServer and the DX executive (§5.2).

The paper's processes communicate by RPC across a router between a 16 Mbps
Token Ring and a 10 Mbps Ethernet; Table 3 reports the number of messages
and the elapsed network time per query.  :class:`RpcChannel` models the
part that is structural — payloads are carried in fixed-size chunks, and
every query exchanges a few control messages — and leaves elapsed time to
the cost model so counts stay exact and deterministic.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import ValidationError
from repro.obs import metrics, trace

__all__ = ["RpcChannel", "TransferRecord"]


@dataclass(frozen=True)
class TransferRecord:
    """Accounting for one payload shipped over the channel."""

    payload_bytes: int
    data_messages: int
    control_messages: int
    #: the trace this transfer belongs to — the message envelope's half of
    #: cross-process context propagation (a receiver would attach() it)
    trace_id: str | None = None

    @property
    def messages(self) -> int:
        """Total messages exchanged (data plus control)."""
        return self.data_messages + self.control_messages


class RpcChannel:
    """Chunks payloads into messages and counts traffic."""

    def __init__(self, chunk_size: int = 1024, control_messages_per_call: int = 4):
        if chunk_size <= 0:
            raise ValidationError("chunk size must be positive")
        self.chunk_size = chunk_size
        self.control_messages_per_call = control_messages_per_call
        self.total_bytes = 0
        self.total_messages = 0
        self.total_calls = 0
        # Sessions served concurrently share one channel; the traffic
        # counters stay exact under threads.
        self._lock = threading.Lock()

    def send(self, payload: bytes | int,
             trace_id: str | None = None) -> TransferRecord:
        """Ship one result payload (bytes, or just its length) to the peer.

        The transfer is stamped with ``trace_id`` — defaulting to the
        sending thread's active trace — so the envelope carries the trace
        context across the process boundary the way the worker pool
        carries it across threads.
        """
        nbytes = payload if isinstance(payload, int) else len(payload)
        if nbytes < 0:
            raise ValidationError("payload size must be non-negative")
        data_messages = -(-nbytes // self.chunk_size) if nbytes else 0
        record = TransferRecord(
            payload_bytes=nbytes,
            data_messages=data_messages,
            control_messages=self.control_messages_per_call,
            trace_id=(trace_id if trace_id is not None
                      else trace.current_trace_id()),
        )
        with self._lock:
            self.total_bytes += nbytes
            self.total_messages += record.messages
            self.total_calls += 1
        metrics.counter("rpc.calls").inc()
        metrics.counter("rpc.messages").inc(record.messages)
        metrics.counter("rpc.bytes").inc(nbytes)
        sp = trace.span("rpc.send")
        if sp.active:
            with sp:
                sp.note(messages=record.messages, bytes=nbytes)
                sp.set_sim_seconds(
                    trace.get_tracer().cost_model.network_seconds(record)
                )
        return record

    def reset(self) -> None:
        """Zero the cumulative traffic counters."""
        with self._lock:
            self.total_bytes = 0
            self.total_messages = 0
            self.total_calls = 0

    def __repr__(self) -> str:
        return (
            f"RpcChannel(chunk={self.chunk_size}B, {self.total_calls} calls, "
            f"{self.total_messages} messages, {self.total_bytes} bytes)"
        )
