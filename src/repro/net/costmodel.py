"""Deterministic cost model calibrated to the paper's 1994 testbed.

All *computation* in this reproduction is real; all *elapsed-time* columns
are produced by this model so that runs are reproducible and comparable to
the paper's RS/6000-530 measurements.  Constants were calibrated against
Table 3 (see the derivations next to each field); the calibration notes in
``EXPERIMENTS.md`` show paper-vs-model residuals per query.

The model is intentionally linear: the paper's own conclusion is that
response time is dominated by the amount of data retrieved, transmitted and
rendered, so each stage is a base cost plus per-unit rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.functions import WorkCounters
from repro.net.rpc import TransferRecord
from repro.storage.device import IOStats

__all__ = ["CostModel1994"]


@dataclass(frozen=True)
class CostModel1994:
    """Per-unit costs of the 1994 configuration (Figure 8)."""

    # --- disk (Starburst LFM on an AIX logical volume) ------------------
    #: elapsed seconds per 4 KiB page I/O.  Table 3: Q1 real-cpu = 3.2 s for
    #: 513 I/Os (6.3 ms), Q4 gives 8.1 ms; we use the middle of that band.
    seconds_per_page_io: float = 0.007

    # --- Starburst / MedicalServer CPU ----------------------------------
    #: fixed CPU per query (catalog lookups, plumbing)
    starburst_cpu_base: float = 0.10
    #: CPU per page I/O issued (buffer fixup, LFM bookkeeping)
    cpu_per_page_io: float = 1.4e-4
    #: CPU per run-list element scanned/merged by the spatial operators
    cpu_per_run: float = 1.5e-5
    #: CPU per voxel gathered out of a VOLUME
    cpu_per_voxel: float = 4.0e-8

    # --- network (RPC across Token Ring / router / Ethernet) ------------
    #: fixed elapsed seconds per query answer (RPC setup; ping was 4 ms)
    network_base: float = 0.20
    #: software + wire overhead per message.  Q1: 24.8 s for 2103 messages
    #: once bandwidth is taken out -> ~10.5 ms per message.
    seconds_per_message: float = 0.0105
    #: effective bandwidth of the 10 Mbps Ethernet leg
    network_bytes_per_second: float = 1.25e6

    # --- DX executive ----------------------------------------------------
    #: ImportVolume CPU per voxel.  Q1: 10.44 s / 2,097,152 voxels ~ 5 us.
    import_cpu_per_voxel: float = 5.0e-6
    #: ImportVolume CPU per run (building the DX positions component)
    import_cpu_per_run: float = 5.0e-5
    #: elapsed = cpu * this factor (import is CPU bound; Table 3 shows
    #: real within a few percent of cpu)
    import_real_factor: float = 1.02
    #: rendering base cost (scene setup, final image shipping)
    render_base: float = 9.5
    #: rendering seconds per voxel rendered
    render_per_voxel: float = 8.0e-6

    # --- everything else -------------------------------------------------
    #: the paper's "other" column: atlas metadata query + SQL compilation
    other_seconds: float = 3.7

    # ------------------------------------------------------------------ #
    # stage models
    # ------------------------------------------------------------------ #

    def starburst_cpu_seconds(self, work: WorkCounters, io: IOStats) -> float:
        """Model of the Starburst/MedicalServer CPU column of Table 3."""
        return (
            self.starburst_cpu_base
            + self.cpu_per_page_io * io.pages_read
            + self.cpu_per_run * work.runs_processed
            + self.cpu_per_voxel * work.voxels_extracted
        )

    def starburst_real_seconds(self, work: WorkCounters, io: IOStats) -> float:
        """CPU plus unbuffered I/O wait."""
        return (
            self.starburst_cpu_seconds(work, io)
            + self.seconds_per_page_io * io.pages_read
        )

    def network_seconds(self, transfer: TransferRecord) -> float:
        """Answer time: per-message software cost plus wire time."""
        return (
            self.network_base
            + self.seconds_per_message * transfer.messages
            + transfer.payload_bytes / self.network_bytes_per_second
        )

    def import_cpu_seconds(self, voxels: int, runs: int) -> float:
        """ImportVolume CPU model: per-voxel plus per-run costs."""
        return self.import_cpu_per_voxel * voxels + self.import_cpu_per_run * runs

    def import_real_seconds(self, voxels: int, runs: int) -> float:
        """ImportVolume elapsed time (CPU bound, small real-time factor)."""
        return self.import_cpu_seconds(voxels, runs) * self.import_real_factor

    def render_seconds(self, voxels: int) -> float:
        """Rendering model: scene-setup base plus per-voxel cost."""
        return self.render_base + self.render_per_voxel * voxels
