"""Network substrate: RPC chunking and the calibrated 1994 cost model."""

from __future__ import annotations

from repro.net.costmodel import CostModel1994
from repro.net.rpc import RpcChannel, TransferRecord

__all__ = ["RpcChannel", "TransferRecord", "CostModel1994"]
