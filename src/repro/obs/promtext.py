"""Prometheus text exposition of the metrics registry, plus a validator.

:func:`render` turns the process-wide :class:`~repro.obs.metrics.
MetricsRegistry` into the Prometheus text format (version 0.0.4) that the
admin endpoint serves at ``/metrics``:

* counters and gauges become single samples with a ``# TYPE`` header;
* histograms become the standard triplet — cumulative ``_bucket{le=...}``
  series ending in ``+Inf``, ``_sum``, and ``_count`` — plus ``_p50`` /
  ``_p95`` / ``_p99`` gauge families carrying the registry's interpolated
  percentile estimates (emitting quantiles as separate gauge families
  keeps the exposition strictly type-correct).

Metric names are sanitized to the Prometheus charset (dots become
underscores), so ``server.wait_seconds`` scrapes as
``server_wait_seconds``.

:func:`parse` is the tiny validating parser the CI smoke job (and the
tests) run against a scraped body: it checks name/label/value syntax,
``# TYPE`` declarations, bucket monotonicity, and the
``+Inf``-bucket-equals-``_count`` invariant, returning the samples by
family.  It is not a general Prometheus client — just enough to prove the
endpoint emits something a real scraper would accept.
"""

from __future__ import annotations

import math
import re

from repro.errors import ValidationError
from repro.obs import metrics as metrics_mod
from repro.obs.metrics import _BUCKET_BOUNDS, Counter, Gauge, Histogram

__all__ = ["render", "parse", "sanitize_name"]

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'^\s*([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"\s*$')


def sanitize_name(name: str) -> str:
    """Map a registry name onto the Prometheus metric-name charset."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not _NAME_RE.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _format_value(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def _render_histogram(name: str, hist: Histogram, lines: list[str]) -> None:
    # Render exclusively from one export() snapshot: mixing it with the
    # live bucket list let a concurrent observe() push a finite bucket's
    # cumulative count past _count, which parse() (and any real scraper's
    # sanity check) rejects as a non-cumulative histogram.
    exported = hist.export()
    bucket_counts = exported["buckets"]
    lines.append(f"# TYPE {name} histogram")
    cumulative = 0
    for bound in _BUCKET_BOUNDS:
        cumulative += bucket_counts[str(bound)]
        lines.append(f'{name}_bucket{{le="{bound}"}} {cumulative}')
    lines.append(f'{name}_bucket{{le="+Inf"}} {exported["count"]}')
    lines.append(f"{name}_sum {_format_value(exported['sum'])}")
    lines.append(f"{name}_count {exported['count']}")
    for stat in ("p50", "p95", "p99"):
        lines.append(f"# TYPE {name}_{stat} gauge")
        lines.append(f"{name}_{stat} {_format_value(exported[stat])}")


def render(registry: "metrics_mod.MetricsRegistry | None" = None) -> str:
    """The registry as Prometheus text exposition (trailing newline included)."""
    registry = registry if registry is not None else metrics_mod.registry()
    lines: list[str] = []
    for name, metric in registry.items():
        exposed = sanitize_name(name)
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {exposed} counter")
            lines.append(f"{exposed} {_format_value(metric.export())}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {exposed} gauge")
            lines.append(f"{exposed} {_format_value(metric.export())}")
        elif isinstance(metric, Histogram):
            _render_histogram(exposed, metric, lines)
    return "\n".join(lines) + "\n"


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise ValidationError(f"bad sample value {text!r}") from None


def _parse_labels(text: str | None) -> dict[str, str]:
    if not text:
        return {}
    labels: dict[str, str] = {}
    for part in text.split(","):
        match = _LABEL_RE.match(part)
        if match is None:
            raise ValidationError(f"bad label pair {part!r}")
        labels[match.group(1)] = match.group(2)
    return labels


def _family_of(name: str, types: dict[str, str]) -> str:
    """The declared family a sample belongs to (histogram suffixes fold in)."""
    if name in types:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    raise ValidationError(f"sample {name!r} has no # TYPE declaration")


def parse(text: str) -> dict[str, dict]:
    """Validate Prometheus exposition text; samples grouped by family.

    Returns ``{family: {"type": str, "samples": [(name, labels, value)]}}``
    and raises :class:`~repro.errors.ValidationError` on any violation a
    scraper would reject (plus histogram-shape invariants a scraper would
    only notice later).
    """
    types: dict[str, str] = {}
    families: dict[str, dict] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    raise ValidationError(f"malformed TYPE line {line!r}")
                _, _, name, kind = parts
                if kind not in ("counter", "gauge", "histogram", "summary",
                                "untyped"):
                    raise ValidationError(f"unknown metric type {kind!r}")
                if name in types:
                    raise ValidationError(f"duplicate TYPE for {name!r}")
                types[name] = kind
                families[name] = {"type": kind, "samples": []}
            continue  # HELP and other comments pass through
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValidationError(f"unparseable sample line {line!r}")
        name = match.group("name")
        labels = _parse_labels(match.group("labels"))
        value = _parse_value(match.group("value"))
        family = _family_of(name, types)
        families[family]["samples"].append((name, labels, value))
    for family, data in families.items():
        if data["type"] != "histogram":
            continue
        buckets = [(labels, value) for name, labels, value in data["samples"]
                   if name == family + "_bucket"]
        counts = [value for name, _, value in data["samples"]
                  if name == family + "_count"]
        if not buckets or not counts:
            raise ValidationError(f"histogram {family!r} lacks buckets or _count")
        previous = -math.inf
        last = None
        for labels, value in buckets:
            if "le" not in labels:
                raise ValidationError(f"histogram {family!r} bucket lacks le=")
            if value < previous:
                raise ValidationError(
                    f"histogram {family!r} buckets are not cumulative"
                )
            previous = value
            last = (labels["le"], value)
        if last is None or last[0] != "+Inf":
            raise ValidationError(f"histogram {family!r} lacks a +Inf bucket")
        if last[1] != counts[0]:
            raise ValidationError(
                f"histogram {family!r}: +Inf bucket {last[1]} != _count {counts[0]}"
            )
    return families
