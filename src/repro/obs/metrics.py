"""A process-wide metrics registry: counters, gauges, and histograms.

Instrumented sites across the tree feed this registry (``lfm.pages_read``,
``cache.hit_rate``, ``executor.rows_emitted``, ``rpc.messages``...); the
bench runner snapshots it into every ``BENCH_*.json`` so each trajectory
point carries the full resource picture, not just the headline columns.

Metrics are plain Python attribute updates on the side of the real
counters — they never touch :class:`~repro.storage.device.IOStats`, so the
paper-facing I/O accounting is unaffected by their presence (qblint's
``no-direct-iostats-mutation`` rule enforces the direction of that data
flow).  Exporters: :meth:`MetricsRegistry.render_text` (one ``name value``
line per metric) and :meth:`MetricsRegistry.render_json`.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager

from repro.errors import ValidationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "reset",
    "scoped",
]


#: per-thread stack of scoped registries (see :func:`scoped`); a plain
#: ``threading.local`` so unscoped threads pay one getattr per update
_SCOPES = threading.local()


def _scope_target() -> "MetricsRegistry | None":
    """The innermost scoped registry on this thread, or None."""
    stack = getattr(_SCOPES, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def scoped(target: "MetricsRegistry"):
    """Tee this thread's process-registry updates into ``target`` too.

    While the block is active, every update applied to a metric of the
    *process-wide* registry from this thread is mirrored into ``target``
    under the same name — the node-attribution mechanism behind metrics
    federation: in-process cluster nodes share one global registry, and
    each node wraps its own work in ``scoped(node_registry)`` so a
    per-node scrape sees only that node's share.  Scopes nest; only the
    innermost target receives the tee (a replica apply running inside a
    router scope attributes to the replica, not to both).  Standalone
    metric objects and scoped registries themselves never tee, so there
    is no recursion or double counting.
    """
    stack = getattr(_SCOPES, "stack", None)
    if stack is None:
        stack = _SCOPES.stack = []
    stack.append(target)
    try:
        yield target
    finally:
        stack.pop()


class Counter:
    """A monotonically increasing count (updates are thread-safe)."""

    __slots__ = ("name", "value", "_lock", "_owner")
    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()
        self._owner: MetricsRegistry | None = None

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (non-negative) to the count."""
        if amount < 0:
            raise ValidationError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self.value += amount
        if self._owner is _REGISTRY:
            target = _scope_target()
            if target is not None:
                teed = target.counter(self.name)
                with teed._lock:
                    teed.value += amount

    def export(self):
        """The current count."""
        return self.value


class Gauge:
    """A point-in-time value that may move in either direction."""

    __slots__ = ("name", "value", "_owner")
    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._owner: MetricsRegistry | None = None

    def set(self, value: float) -> None:
        """Replace the current value (a single atomic store)."""
        self.value = value
        if self._owner is _REGISTRY:
            target = _scope_target()
            if target is not None:
                target.gauge(self.name).value = value

    def export(self):
        """The current value."""
        return self.value


#: histogram bucket upper bounds (seconds-flavored; counts land in the
#: first bucket whose bound is >= the observation, overflow in ``inf``)
_BUCKET_BOUNDS = (1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0)


class Histogram:
    """Distribution summary: count/sum/min/max plus coarse log buckets."""

    __slots__ = ("name", "count", "total", "min", "max", "buckets", "_lock",
                 "_owner")
    kind = "histogram"

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.buckets = [0] * (len(_BUCKET_BOUNDS) + 1)
        self._lock = threading.Lock()
        self._owner: MetricsRegistry | None = None

    def observe(self, value: float) -> None:
        """Record one observation (thread-safe)."""
        self._observe_local(value)
        if self._owner is _REGISTRY:
            target = _scope_target()
            if target is not None:
                target.histogram(self.name)._observe_local(value)

    def _observe_local(self, value: float) -> None:
        """Apply one observation to this histogram only (no scope tee)."""
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            for i, bound in enumerate(_BUCKET_BOUNDS):
                if value <= bound:
                    self.buckets[i] += 1
                    return
            self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 < q <= 1``) from the buckets.

        Linear interpolation inside the bucket holding the target rank,
        clamped by the observed ``min``/``max`` so estimates never leave
        the data's range.  The overflow bucket interpolates between the
        last finite bound and ``max`` like any other bucket.  Exact
        values are impossible from fixed bounds — this is the standard
        Prometheus-style estimate, good to one bucket's width.
        """
        if not 0.0 < q <= 1.0:
            raise ValidationError(f"percentile wants 0 < q <= 1, got {q}")
        with self._lock:
            return self._percentile_locked(q)

    def _percentile_locked(self, q: float) -> float:
        """Quantile estimate from a consistent state (lock held by caller)."""
        if not self.count:
            return 0.0
        target = q * self.count
        cumulative = 0
        lower = 0.0
        # The overflow bucket (bound None) is a real bucket too: its
        # upper edge is the observed max.  Skipping it — the old code fell
        # through to a bare ``max`` — misreported every quantile whose
        # rank landed there (e.g. p50 of a distribution entirely above
        # the last finite bound collapsed to the single largest value).
        for bound, in_bucket in zip(_BUCKET_BOUNDS + (None,), self.buckets):
            if in_bucket and cumulative + in_bucket >= target:
                lo = max(lower, self.min if self.min is not None else lower)
                hi = self.max if self.max is not None else lower
                if bound is not None:
                    hi = min(bound, hi) if self.max is not None else bound
                if hi < lo:
                    hi = lo
                return lo + (target - cumulative) / in_bucket * (hi - lo)
            cumulative += in_bucket
            if bound is not None:
                lower = bound
        return self.max if self.max is not None else 0.0

    def export(self):
        """Summary dict: count, sum, mean, min, max, percentiles, buckets.

        Computed from one atomic snapshot under the histogram's lock, so
        a concurrent ``observe`` can never produce a dict whose mean,
        percentiles, and bucket counts disagree with ``count`` (an
        exporter mid-``observe`` used to see ``count`` and ``total`` from
        different instants).
        """
        with self._lock:
            count = self.count
            return {
                "count": count,
                "sum": self.total,
                "mean": self.total / count if count else 0.0,
                "min": self.min,
                "max": self.max,
                "p50": self._percentile_locked(0.50),
                "p95": self._percentile_locked(0.95),
                "p99": self._percentile_locked(0.99),
                "buckets": dict(
                    zip([str(b) for b in _BUCKET_BOUNDS] + ["inf"], self.buckets)
                ),
            }


class MetricsRegistry:
    """Name -> metric map with create-on-first-use accessors.

    Registration is thread-safe: two threads touching the same name for
    the first time get the same metric object.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name)
                metric._owner = self
            elif not isinstance(metric, cls):
                raise ValidationError(
                    f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        """Get or create the counter named ``name``."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge named ``name``."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram named ``name``."""
        return self._get(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list[str]:
        """All registered metric names, sorted."""
        with self._lock:
            return sorted(self._metrics)

    def items(self) -> list[tuple[str, "Counter | Gauge | Histogram"]]:
        """``(name, metric)`` pairs, names sorted (for exporters)."""
        with self._lock:
            return sorted(self._metrics.items())

    def snapshot(self) -> dict:
        """Every metric's exported value, grouped by kind, names sorted."""
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in self.names():
            metric = self._metrics.get(name)
            if metric is not None:
                out[metric.kind + "s"][name] = metric.export()
        return out

    def render_text(self) -> str:
        """One ``name value`` line per metric (histograms one line per stat)."""
        lines: list[str] = []
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                exported = metric.export()
                for stat in ("count", "sum", "mean", "min", "max",
                             "p50", "p95", "p99"):
                    lines.append(f"{name}.{stat} {exported[stat]}")
            else:
                lines.append(f"{name} {metric.export()}")
        return "\n".join(lines)

    def render_json(self, indent: int | None = None) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent)

    def reset(self) -> None:
        """Forget every metric (registrations included)."""
        with self._lock:
            self._metrics.clear()


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide registry."""
    return _REGISTRY


def counter(name: str) -> Counter:
    """Get or create a counter in the process-wide registry."""
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """Get or create a gauge in the process-wide registry."""
    return _REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    """Get or create a histogram in the process-wide registry."""
    return _REGISTRY.histogram(name)


def snapshot() -> dict:
    """Snapshot of every metric in the process-wide registry."""
    return _REGISTRY.snapshot()


def reset() -> None:
    """Reset the process-wide registry."""
    _REGISTRY.reset()
