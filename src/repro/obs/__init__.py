"""Observability layer: spans, metrics, profiles, recorder, query log.

Cooperating pieces, all read-only with respect to the paper-facing I/O
accounting:

* :mod:`repro.obs.trace` — hierarchical spans (wall time, simulated
  :class:`~repro.net.costmodel.CostModel1994` time, ``IOStats`` deltas)
  with cross-thread trace-context propagation, off by default and
  zero-overhead while disabled;
* :mod:`repro.obs.metrics` — a process-wide registry of counters, gauges,
  and histograms (with percentile estimates) plus text/JSON exporters;
* :mod:`repro.obs.promtext` — Prometheus text exposition of the registry
  and a small validating parser for it;
* :mod:`repro.obs.explain` — the per-operator profile EXPLAIN ANALYZE
  fills and the renderer that turns it into an annotated plan tree;
* :mod:`repro.obs.recorder` — the always-on flight recorder: a bounded
  ring of completed-statement summaries with slow/error/recovery
  incident dumps;
* :mod:`repro.obs.qlog` — the opt-in JSON-lines structured query log fed
  by the recorder;
* :mod:`repro.obs.federation` — per-node registry scrapes merged into one
  cluster-wide Prometheus page (counters summed, gauges labeled per node,
  histograms bucket-merged);
* :mod:`repro.obs.export` — completed span trees as Chrome
  ``trace_event`` JSON (one track per shard leg) and compact JSONL;
* :mod:`repro.obs.digest` — pg_stat_statements-style statement digests
  (normalized-statement fingerprints with per-class accounting);
* :mod:`repro.obs.slo` — declarative objectives with multi-window
  burn-rate alerting over any snapshot source.

This package sits below every instrumented layer (storage imports it), so
it must stay import-light: nothing here pulls in ``repro.storage`` or
``repro.db`` at module level — which is why :mod:`repro.obs.digest` (it
needs the SQL parser) is imported lazily, at first use, by the recorder.
"""

from __future__ import annotations

from repro.obs import export, federation, metrics, promtext, qlog, recorder, slo, trace
from repro.obs.explain import OperatorStats, PlanProfile, render_analyzed_plan

__all__ = [
    "export",
    "federation",
    "metrics",
    "promtext",
    "qlog",
    "recorder",
    "slo",
    "trace",
    "OperatorStats",
    "PlanProfile",
    "render_analyzed_plan",
]
