"""Observability layer: spans, metrics, profiles, recorder, query log.

Cooperating pieces, all read-only with respect to the paper-facing I/O
accounting:

* :mod:`repro.obs.trace` — hierarchical spans (wall time, simulated
  :class:`~repro.net.costmodel.CostModel1994` time, ``IOStats`` deltas)
  with cross-thread trace-context propagation, off by default and
  zero-overhead while disabled;
* :mod:`repro.obs.metrics` — a process-wide registry of counters, gauges,
  and histograms (with percentile estimates) plus text/JSON exporters;
* :mod:`repro.obs.promtext` — Prometheus text exposition of the registry
  and a small validating parser for it;
* :mod:`repro.obs.explain` — the per-operator profile EXPLAIN ANALYZE
  fills and the renderer that turns it into an annotated plan tree;
* :mod:`repro.obs.recorder` — the always-on flight recorder: a bounded
  ring of completed-statement summaries with slow/error/recovery
  incident dumps;
* :mod:`repro.obs.qlog` — the opt-in JSON-lines structured query log fed
  by the recorder.

This package sits below every instrumented layer (storage imports it), so
it must stay import-light: nothing here pulls in ``repro.storage`` or
``repro.db`` at module level.
"""

from __future__ import annotations

from repro.obs import metrics, promtext, qlog, recorder, trace
from repro.obs.explain import OperatorStats, PlanProfile, render_analyzed_plan

__all__ = [
    "metrics",
    "promtext",
    "qlog",
    "recorder",
    "trace",
    "OperatorStats",
    "PlanProfile",
    "render_analyzed_plan",
]
