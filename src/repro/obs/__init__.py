"""Observability layer: trace spans, metrics, and EXPLAIN ANALYZE profiles.

Three cooperating pieces, all read-only with respect to the paper-facing
I/O accounting:

* :mod:`repro.obs.trace` — hierarchical spans (wall time, simulated
  :class:`~repro.net.costmodel.CostModel1994` time, ``IOStats`` deltas),
  off by default and zero-overhead while disabled;
* :mod:`repro.obs.metrics` — a process-wide registry of counters, gauges,
  and histograms with text/JSON exporters;
* :mod:`repro.obs.explain` — the per-operator profile EXPLAIN ANALYZE
  fills and the renderer that turns it into an annotated plan tree.

This package sits below every instrumented layer (storage imports it), so
it must stay import-light: nothing here pulls in ``repro.storage`` or
``repro.db`` at module level.
"""

from __future__ import annotations

from repro.obs import metrics, trace
from repro.obs.explain import OperatorStats, PlanProfile, render_analyzed_plan

__all__ = [
    "metrics",
    "trace",
    "OperatorStats",
    "PlanProfile",
    "render_analyzed_plan",
]
