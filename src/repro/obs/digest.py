"""Statement digests: pg_stat_statements-style per-query-class accounting.

The flight recorder remembers *individual* statements; operating a fleet
needs the orthogonal view — "which query **shape** is burning the page-I/O
budget?".  Every completed :class:`~repro.obs.recorder.QueryRecord` is
folded into a bounded :class:`DigestTable` keyed by a **fingerprint** of
the statement with its constants normalized away: the SQL is parsed, every
literal is replaced by a ``?`` placeholder, and the canonical unparse of
that skeleton is hashed.  ``SELECT v FROM t WHERE s = 'pet1'`` and
``... = 'pet2'`` therefore share one digest row carrying calls, errors,
rows, page I/O, cache-hit rate, a latency histogram, and per-shard call
counts (cluster legs tag their records with the serving shard).

The table is process-wide and bounded (top-K by calls, cold rows evicted),
exposed at the admin endpoint's ``/digests`` and embedded in flight-
recorder incident reports.  Statements that fail to parse — including
raw strings a failing statement never got past the lexer with — fall back
to a whitespace-collapsed fingerprint so errors are attributed too.

This module is imported lazily by the recorder: it pulls the SQL parser,
which :mod:`repro.obs` must not load at package-import time.
"""

from __future__ import annotations

import dataclasses
import hashlib
import re
import threading
import time
from collections import OrderedDict

from repro.concurrency import lockdep
from repro.errors import ReproError
from repro.obs import metrics

__all__ = [
    "DigestEntry",
    "DigestTable",
    "normalize",
    "fingerprint",
    "get_table",
    "observe",
    "enable",
    "disable",
    "is_enabled",
    "reset",
]

_WS_RE = re.compile(r"\s+")


def normalize(sql: str) -> str:
    """The statement's shape: canonical unparse with literals -> ``?``.

    Parses ``sql``, replaces every literal constant (and any already-bound
    parameter) with an anonymous ``?`` placeholder, and unparses the
    skeleton — so statements differing only in constants normalize to the
    same text.  Unparseable input degrades to uppercase-keyword-free
    whitespace collapsing (still stable, just less collapsing).
    """
    from repro.db.sql import ast as ast_mod
    from repro.db.sql.parser import parse
    from repro.db.sql.unparse import unparse

    def strip(node):
        if isinstance(node, (ast_mod.Literal, ast_mod.Param)):
            return ast_mod.Param(0)
        if dataclasses.is_dataclass(node) and not isinstance(node, type):
            changes = {}
            for f in dataclasses.fields(node):
                if f.name == "span":
                    continue
                value = getattr(node, f.name)
                stripped = strip(value)
                if stripped is not value:
                    changes[f.name] = stripped
            return dataclasses.replace(node, **changes) if changes else node
        if isinstance(node, tuple):
            stripped = tuple(strip(item) for item in node)
            return stripped if stripped != node else node
        if isinstance(node, list):
            return [strip(item) for item in node]
        return node

    try:
        return unparse(strip(parse(sql)))
    except ReproError:
        return _WS_RE.sub(" ", sql).strip()


def fingerprint(normalized: str) -> str:
    """A short stable digest id for a normalized statement."""
    return hashlib.sha256(normalized.encode("utf-8")).hexdigest()[:16]


class DigestEntry:
    """Aggregate statistics for one normalized statement shape."""

    __slots__ = ("digest", "statement", "calls", "errors", "rows",
                 "pages_read", "pages_written", "cache_hits", "latency",
                 "shards", "last_seen_unix")

    def __init__(self, digest: str, statement: str):
        self.digest = digest
        self.statement = statement
        self.calls = 0
        self.errors = 0
        self.rows = 0
        self.pages_read = 0      # qblint: disable=no-direct-iostats-mutation
        self.pages_written = 0   # qblint: disable=no-direct-iostats-mutation
        self.cache_hits = 0
        self.latency = metrics.Histogram(f"digest.{digest}")
        self.shards: dict[str, int] = {}
        self.last_seen_unix = 0.0

    def to_dict(self) -> dict:
        """The row as a JSON-ready dict (stable key set)."""
        latency = self.latency.export()
        return {
            "digest": self.digest,
            "statement": self.statement,
            "calls": self.calls,
            "errors": self.errors,
            "rows": self.rows,
            "pages_read": self.pages_read,
            "pages_written": self.pages_written,
            "cache_hit_rate": (self.cache_hits / self.calls
                               if self.calls else 0.0),
            "mean_ms": round(latency["mean"] * 1e3, 3),
            "p95_ms": round(latency["p95"] * 1e3, 3),
            "p99_ms": round(latency["p99"] * 1e3, 3),
            "total_seconds": round(latency["sum"], 6),
            "shards": dict(sorted(self.shards.items())),
            "last_seen_unix": self.last_seen_unix,
        }


class DigestTable:
    """Bounded map of normalized-statement shapes to aggregate rows.

    When full, observing a *new* shape evicts the coldest row (fewest
    calls, oldest on ties) — the hot statement classes an operator cares
    about stay put.  A small LRU memo caches raw SQL -> (digest,
    normalized) so the steady-state cost per statement is one dict hit
    plus counter bumps.
    """

    def __init__(self, capacity: int = 128, memo_capacity: int = 512):
        self.capacity = capacity
        self.enabled = True
        self._entries: dict[str, DigestEntry] = {}
        self._memo: OrderedDict[str, tuple[str, str]] = OrderedDict()
        self._memo_capacity = memo_capacity
        # guarded_by: self._lock
        self._lock = lockdep.instrument(threading.Lock(), "obs.digest")

    def _key(self, sql: str) -> tuple[str, str]:
        """(digest, normalized) for raw SQL, via the LRU memo."""
        with self._lock:
            hit = self._memo.get(sql)
            if hit is not None:
                self._memo.move_to_end(sql)
                return hit
        normalized = normalize(sql)
        key = (fingerprint(normalized), normalized)
        with self._lock:
            self._memo[sql] = key
            self._memo.move_to_end(sql)
            while len(self._memo) > self._memo_capacity:
                self._memo.popitem(last=False)
        return key

    def observe(self, record) -> str | None:
        """Fold one completed statement record into its digest row.

        ``record`` is a :class:`~repro.obs.recorder.QueryRecord` (or any
        duck-typed equivalent).  Returns the digest id, or ``None`` while
        the table is disabled.
        """
        if not self.enabled:
            return None
        digest, normalized = self._key(record.sql)
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                if len(self._entries) >= self.capacity:
                    self._evict_locked()
                entry = self._entries[digest] = DigestEntry(digest, normalized)
            entry.calls += 1
            if not record.ok:
                entry.errors += 1
            entry.rows += record.rows
            # Copies of deltas the recorder already accounted — same
            # contract as QueryRecord: digests never touch IOStats.
            entry.pages_read += record.pages_read       # qblint: disable=no-direct-iostats-mutation
            entry.pages_written += record.pages_written # qblint: disable=no-direct-iostats-mutation
            if record.cache_hit:
                entry.cache_hits += 1
            shard = getattr(record, "shard", None)
            if shard is not None:
                entry.shards[shard] = entry.shards.get(shard, 0) + 1
            entry.last_seen_unix = time.time()
        # The latency histogram is a standalone metric object (it never
        # tees into scoped registries); observed outside the table lock.
        entry.latency.observe(record.wall_seconds)
        metrics.counter("digest.observations").inc()
        return digest

    def _evict_locked(self) -> None:
        """Drop the coldest row to make room (lock held by caller)."""
        coldest = min(
            self._entries.values(),
            key=lambda e: (e.calls, e.last_seen_unix),
        )
        del self._entries[coldest.digest]
        metrics.counter("digest.evictions").inc()

    def top(self, n: int = 50) -> list[dict]:
        """The ``n`` busiest rows (by calls, then total time), as dicts."""
        with self._lock:
            entries = list(self._entries.values())
        entries.sort(key=lambda e: (-e.calls, -e.latency.total, e.digest))
        return [e.to_dict() for e in entries[:max(0, n)]]

    def get(self, digest: str) -> dict | None:
        """One row by digest id, or None."""
        with self._lock:
            entry = self._entries.get(digest)
        return entry.to_dict() if entry is not None else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def reset(self) -> None:
        """Forget every row and memo entry (capacity/enabled untouched)."""
        with self._lock:
            self._entries.clear()
            self._memo.clear()


_TABLE = DigestTable()


def get_table() -> DigestTable:
    """The process-wide digest table."""
    return _TABLE


def observe(record) -> str | None:
    """Fold a completed statement record into the process-wide table."""
    return _TABLE.observe(record)


def enable() -> DigestTable:
    """Turn digest accounting on (the default); returns the table."""
    _TABLE.enabled = True
    return _TABLE


def disable() -> None:
    """Turn digest accounting off (existing rows are kept)."""
    _TABLE.enabled = False


def is_enabled() -> bool:
    """Is digest accounting currently enabled?"""
    return _TABLE.enabled


def reset() -> None:
    """Clear the process-wide digest table."""
    _TABLE.reset()
