"""Trace export: completed span trees as Chrome ``trace_event`` JSON/JSONL.

A routed query's span tree spans threads and (logically) nodes — the
router's plan/scatter/gather/merge phases plus one ``cluster.leg`` per
shard.  :func:`chrome_trace` serializes any list of completed
:class:`~repro.obs.trace.SpanRecord`\\ s into the Chrome Trace Event
Format (load it at ``chrome://tracing`` or https://ui.perfetto.dev):

* one **track** (``tid``) per shard leg, derived from the ``shard``/
  ``role`` span tags; spans without a shard ancestor land on the
  ``router`` track — so a scatter-gather waterfall reads left-to-right
  with queue/execute phases visible per shard;
* every span becomes a complete (``"ph": "X"``) event whose ``ts``/
  ``dur`` microseconds come from the records' ``start_perf`` clock,
  rebased to the capture's earliest span.

:func:`spans_jsonl` is the compact line-oriented alternative (one JSON
object per span) for shipping to log pipelines.  Both formats are pure
functions over span records: export never touches the live tracer state,
so it can run on a retained trace long after the query finished.
"""

from __future__ import annotations

import json

from repro.obs import trace

__all__ = ["chrome_trace", "spans_jsonl", "trace_spans"]


def trace_spans(trace_id: str, spans=None) -> list:
    """Every recorded span of one trace, in start order.

    Searches ``spans`` (default: the process-wide tracer's records) for
    ``trace_id``; returns ``[]`` when the trace is unknown or tracing was
    off.
    """
    spans = trace.records() if spans is None else spans
    return [s for s in spans if s.trace_id == trace_id]


def _track_of(record, parents: dict, cache: dict) -> str:
    """The export track for a span: its nearest shard-tagged ancestor."""
    cached = cache.get(record.span_id)
    if cached is not None:
        return cached
    shard = record.meta.get("shard")
    if shard is not None:
        role = record.meta.get("role", "primary")
        track = (f"shard-{shard}" if role == "primary"
                 else f"shard-{shard}-{role}")
    else:
        parent = parents.get(record.parent_id)
        track = _track_of(parent, parents, cache) if parent is not None else "router"
    cache[record.span_id] = track
    return track


def _assign_tracks(spans) -> dict[int, str]:
    """span_id -> track name for every span in the list."""
    parents = {s.span_id: s for s in spans}
    cache: dict[int, str] = {}
    for record in spans:
        _track_of(record, parents, cache)
    return cache


def chrome_trace(spans) -> dict:
    """The spans as a Chrome Trace Event Format document (JSON-ready dict).

    ``spans`` is any list of completed :class:`SpanRecord`\\ s (e.g. one
    trace's records from :func:`trace_spans`, or a whole capture).  The
    returned dict serializes with :func:`json.dumps` as-is.
    """
    spans = list(spans)
    tracks = _assign_tracks(spans)
    names = sorted(set(tracks.values()),
                   key=lambda t: (t != "router", t))  # router first
    tids = {name: i for i, name in enumerate(names)}
    events: list[dict] = []
    for name in names:
        events.append({
            "ph": "M", "pid": 1, "tid": tids[name],
            "name": "thread_name", "args": {"name": name},
        })
    base = min((s.start_perf for s in spans), default=0.0)
    for record in spans:
        args = {str(k): v for k, v in record.meta.items()}
        args["trace_id"] = record.trace_id
        if record.io is not None:
            args["pages_read"] = record.io.pages_read
            args["pages_written"] = record.io.pages_written
        events.append({
            "ph": "X",
            "pid": 1,
            "tid": tids[tracks[record.span_id]],
            "name": record.name,
            "cat": record.name.split(".", 1)[0],
            "ts": round((record.start_perf - base) * 1e6, 3),
            "dur": round(record.wall_seconds * 1e6, 3),
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def spans_jsonl(spans) -> str:
    """The spans as compact JSON lines (one object per span, start order).

    Each line carries identity (``trace_id``/``span_id``/``parent_id``),
    timing in microseconds on the shared ``start_perf`` timeline, and the
    span's metadata — the shippable flat form of a trace tree.
    """
    spans = list(spans)
    base = min((s.start_perf for s in spans), default=0.0)
    lines = []
    for record in spans:
        event = {
            "trace_id": record.trace_id,
            "span_id": record.span_id,
            "parent_id": record.parent_id,
            "name": record.name,
            "depth": record.depth,
            "start_us": round((record.start_perf - base) * 1e6, 3),
            "dur_us": round(record.wall_seconds * 1e6, 3),
            "sim_seconds": record.sim_seconds,
            "meta": {str(k): v for k, v in record.meta.items()},
        }
        if record.io is not None:
            event["pages_read"] = record.io.pages_read
            event["pages_written"] = record.io.pages_written
        lines.append(json.dumps(event, separators=(",", ":"), default=str))
    return "\n".join(lines) + ("\n" if lines else "")
