"""SLO engine: declarative objectives with multi-window burn-rate alerts.

An :class:`Objective` states a service-level target over one metric of
the (possibly federated) registry; the :class:`SloEngine` samples a
snapshot source on every :meth:`~SloEngine.tick` and evaluates the
Google-SRE **multi-window, multi-burn-rate** policy: an alert fires only
when the error budget is burning faster than ``factor``× over *both* a
long window and its short confirmation window — fast burns page quickly,
slow burns wait for sustained evidence, and a recovered service
un-fires because the short window goes quiet first.

Three objective kinds:

* ``error_rate`` — a failure counter over a total counter (e.g.
  ``recorder.errors`` / ``recorder.records``) with ``budget`` the allowed
  failure fraction;
* ``latency`` — a histogram family with ``threshold`` seconds as the
  "too slow" bound and ``budget`` the allowed slow fraction (a p99
  objective is ``budget=0.01``);
* ``gauge_ceiling`` — a gauge (e.g. ``cluster.replica.lag``) that must
  stay at or below ``threshold``; it breaches when the ceiling is
  exceeded for the whole confirmation window.

Everything is injected for testability: ``source`` is any callable
returning a :func:`repro.obs.metrics.snapshot`-shaped dict (the cluster
router passes :func:`repro.obs.federation.federated_snapshot`), and
``clock`` replaces ``time.time`` so a fake clock can replay hours of burn
in microseconds.  Firing alerts land at the admin endpoint's ``/alerts``
and dump a ``slo.breach`` flight-recorder incident.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.concurrency import lockdep
from repro.errors import ValidationError
from repro.obs import metrics, promtext

__all__ = [
    "DEFAULT_WINDOWS",
    "Objective",
    "SloEngine",
    "default_objectives",
    "get_engine",
    "set_engine",
]

#: (long window s, short window s, burn-rate factor) pairs — the SRE
#: workbook's page-severity defaults: 14.4x over 1h/5m, 6x over 6h/30m
DEFAULT_WINDOWS = ((3600.0, 300.0, 14.4), (21600.0, 1800.0, 6.0))

_KINDS = ("error_rate", "latency", "gauge_ceiling")


@dataclass(frozen=True)
class Objective:
    """One declarative service-level objective."""

    name: str
    kind: str                         #: one of ``_KINDS``
    metric: str                       #: counter/histogram/gauge family
    threshold: float = 0.0            #: seconds (latency) or ceiling (gauge)
    total_metric: str | None = None   #: denominator counter (error_rate)
    budget: float = 0.01              #: allowed bad fraction of the window
    windows: tuple = DEFAULT_WINDOWS

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValidationError(
                f"objective kind must be one of {_KINDS}, got {self.kind!r}"
            )
        if self.kind == "error_rate" and not self.total_metric:
            raise ValidationError(
                f"error_rate objective {self.name!r} needs total_metric"
            )
        if not 0.0 < self.budget <= 1.0:
            raise ValidationError(
                f"objective {self.name!r}: budget must be in (0, 1]"
            )

    def to_dict(self) -> dict:
        """The objective as a JSON-ready dict."""
        return {
            "name": self.name,
            "kind": self.kind,
            "metric": self.metric,
            "threshold": self.threshold,
            "total_metric": self.total_metric,
            "budget": self.budget,
            "windows": [list(w) for w in self.windows],
        }


def default_objectives(latency_threshold: float = 0.25,
                       lag_ceiling: float = 64.0) -> list[Objective]:
    """The stock fleet objectives: p99 latency, error rate, replica lag."""
    return [
        Objective("statement-p99-latency", "latency", "db.query_seconds",
                  threshold=latency_threshold, budget=0.01),
        Objective("statement-errors", "error_rate", "recorder.errors",
                  total_metric="recorder.records", budget=0.01),
        Objective("replica-lag", "gauge_ceiling", "cluster.replica.lag",
                  threshold=lag_ceiling),
    ]


def _sanitize_snapshot(snap: dict) -> dict:
    """Key every series by its sanitized (exposition) name.

    The federated source is reassembled from exposition text and already
    carries sanitized names; a plain :func:`metrics.snapshot` source
    carries registry names.  Sanitizing both sides lets objectives use
    either spelling.
    """
    out: dict[str, dict] = {}
    for kind in ("counters", "gauges", "histograms"):
        out[kind] = {promtext.sanitize_name(name): value
                     for name, value in snap.get(kind, {}).items()}
    return out


def _cumulative(hist: dict) -> list[tuple[float, float]]:
    """Snapshot-style histogram buckets as sorted cumulative (bound, count)."""
    pairs = sorted(
        ((math.inf if bound == "inf" else float(bound)), count)
        for bound, count in hist.get("buckets", {}).items()
    )
    cumulative = []
    running = 0.0
    for bound, count in pairs:
        running += count
        cumulative.append((bound, running))
    return cumulative


@dataclass
class _Sample:
    """One tick's reading of an objective's inputs."""

    t: float
    bad: float = 0.0      #: errors so far / cumulative slow count
    total: float = 0.0    #: total count so far
    value: float = 0.0    #: gauge reading


@dataclass
class _Series:
    """Ring of samples for one objective."""

    samples: deque = field(default_factory=lambda: deque(maxlen=4096))


class SloEngine:
    """Evaluates objectives over a snapshot source; fires burn-rate alerts."""

    def __init__(self, objectives=(), *, source=None, clock=None,
                 history: int = 64):
        self.source = source if source is not None else metrics.snapshot
        self.clock = clock if clock is not None else time.time
        self.ticks = 0
        # guarded_by: self._lock
        self._lock = lockdep.instrument(threading.Lock(), "obs.slo")
        self._objectives: list[Objective] = []
        self._series: dict[str, _Series] = {}
        self._active: dict[str, dict] = {}
        self._history: deque[dict] = deque(maxlen=history)
        for objective in objectives:
            self.add(objective)

    def add(self, objective: Objective) -> Objective:
        """Register one objective (its sample ring starts empty)."""
        with self._lock:
            if any(o.name == objective.name for o in self._objectives):
                raise ValidationError(
                    f"duplicate objective name {objective.name!r}"
                )
            self._objectives.append(objective)
            self._series[objective.name] = _Series()
        return objective

    def objectives(self) -> list[Objective]:
        """The registered objectives, in registration order."""
        with self._lock:
            return list(self._objectives)

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #

    def _sample(self, objective: Objective, snap: dict, t: float) -> _Sample:
        sample = _Sample(t=t)
        metric = promtext.sanitize_name(objective.metric)
        if objective.kind == "error_rate":
            total = promtext.sanitize_name(objective.total_metric)
            sample.bad = float(snap["counters"].get(metric, 0))
            sample.total = float(snap["counters"].get(total, 0))
        elif objective.kind == "latency":
            hist = snap["histograms"].get(metric, {})
            sample.total = float(hist.get("count", 0))
            good = 0.0
            for bound, cumulative in _cumulative(hist):
                if bound <= objective.threshold:
                    good = cumulative
                else:
                    break
            sample.bad = sample.total - good
        else:  # gauge_ceiling
            sample.value = float(snap["gauges"].get(metric, 0.0))
        return sample

    @staticmethod
    def _at(samples, cutoff: float) -> "_Sample | None":
        """The newest sample at or before ``cutoff`` (else the oldest)."""
        best = None
        for sample in samples:
            if sample.t <= cutoff:
                best = sample
            else:
                break
        if best is None and samples:
            return samples[0]
        return best

    def _burn(self, objective: Objective, samples, now: "_Sample",
              window: float) -> float:
        """Budget burn rate over the trailing ``window`` seconds."""
        then = self._at(samples, now.t - window)
        if then is None:
            return 0.0
        bad = now.bad - then.bad
        total = now.total - then.total
        if total <= 0:
            return 0.0
        return (bad / total) / objective.budget

    def _evaluate(self, objective: Objective, samples,
                  now: "_Sample") -> dict | None:
        """The breach detail dict if the objective is breaching, else None."""
        if objective.kind == "gauge_ceiling":
            short = min(w[1] for w in objective.windows)
            then = self._at(samples, now.t - short)
            sustained = (
                now.value > objective.threshold
                and then is not None
                and then.value > objective.threshold
                and now.t - samples[0].t >= short
            )
            if sustained:
                return {"kind": objective.kind, "value": now.value,
                        "threshold": objective.threshold,
                        "window_seconds": short}
            return None
        for long_w, short_w, factor in objective.windows:
            burn_long = self._burn(objective, samples, now, long_w)
            burn_short = self._burn(objective, samples, now, short_w)
            if burn_long >= factor and burn_short >= factor:
                return {"kind": objective.kind,
                        "burn_rate_long": round(burn_long, 3),
                        "burn_rate_short": round(burn_short, 3),
                        "factor": factor,
                        "window_seconds": long_w,
                        "short_window_seconds": short_w}
        return None

    def tick(self) -> list[dict]:
        """Sample the source, evaluate every objective; returns new alerts."""
        snap = _sanitize_snapshot(self.source())
        t = self.clock()
        fired: list[dict] = []
        resolved: list[dict] = []
        with self._lock:
            self.ticks += 1
            horizon = max((w[0] for o in self._objectives
                           for w in o.windows), default=3600.0)
            for objective in self._objectives:
                samples = self._series[objective.name].samples
                sample = self._sample(objective, snap, t)
                samples.append(sample)
                while samples and samples[0].t < t - 2 * horizon:
                    samples.popleft()
                detail = self._evaluate(objective, samples, sample)
                active = self._active.get(objective.name)
                if detail is not None and active is None:
                    alert = {
                        "objective": objective.name,
                        "metric": objective.metric,
                        "fired_unix": t,
                        "detail": detail,
                    }
                    self._active[objective.name] = alert
                    self._history.append(alert)
                    fired.append(alert)
                elif detail is not None:
                    active["detail"] = detail
                elif active is not None:
                    del self._active[objective.name]
                    resolved.append(dict(active, resolved_unix=t))
            active_count = len(self._active)
        # Side effects outside the engine lock: the recorder takes its own
        # locks and snapshots the whole metrics registry.
        metrics.gauge("slo.alerts_active").set(active_count)
        for alert in fired:
            metrics.counter("slo.alerts_fired").inc()
            from repro.obs import recorder

            recorder.incident("slo.breach", trigger=alert)
        for alert in resolved:
            metrics.counter("slo.alerts_resolved").inc()
            self._history.append(alert)
        return fired

    def alerts(self) -> dict:
        """The alert surface served at ``/alerts`` (JSON-ready)."""
        with self._lock:
            return {
                "active": [dict(a) for a in self._active.values()],
                "history": [dict(a) for a in self._history],
                "objectives": [o.to_dict() for o in self._objectives],
                "ticks": self.ticks,
            }


_ENGINE: SloEngine | None = None
_ENGINE_LOCK = threading.Lock()


def get_engine() -> SloEngine:
    """The process-wide SLO engine (stock objectives, created lazily)."""
    global _ENGINE
    with _ENGINE_LOCK:
        if _ENGINE is None:
            _ENGINE = SloEngine(default_objectives())
        return _ENGINE


def set_engine(engine: "SloEngine | None") -> None:
    """Replace (or clear, with None) the process-wide engine."""
    global _ENGINE
    with _ENGINE_LOCK:
        _ENGINE = engine
