"""Hierarchical trace spans for the whole pipeline of Figure 7.

A span covers one named stage (``lfm.read_ranges``, ``executor.select``,
``dx.render``...) and records three things when it closes:

* **wall seconds** — real elapsed time of this implementation;
* **simulated seconds** — what the calibrated
  :class:`~repro.net.costmodel.CostModel1994` says the 1994 testbed would
  have spent (derived from the span's I/O delta unless the instrumented
  site supplies a better stage model);
* **an I/O delta** — the :class:`~repro.storage.device.IOStats` movement of
  whatever counter object the site passed as ``io=``.

Tracing is **off by default** and the disabled path is a single flag check
returning a shared no-op span, so instrumented code performs no clock
reads, no stat snapshots, and — critically — no storage I/O of its own:
the Table 3/4 page counts are bit-identical with the layer on or off (the
recorder only ever *reads* counters; qblint's ``no-direct-iostats-mutation``
rule keeps it that way).

Spans form **trees across threads**.  Every span carries a ``trace_id``
(the statement it belongs to), a process-unique ``span_id``, and its
``parent_id``.  Within one thread, parentage follows nesting; across a
thread hop (the serving layer's worker pool, an RPC boundary) the caller
snapshots its position with :func:`current_context` and the receiving
thread adopts it with :func:`attach` — so one served statement yields one
coherent tree no matter how many threads touched it.  Context propagation
works even while span recording is disabled (it is a couple of
thread-local attribute writes), which is what gives the flight recorder
its always-on ``trace_id``.

The per-thread state (open-span stack, depth, adopted context) lives in a
``threading.local``; the shared record list is appended under a mutex, so
concurrent sessions can trace simultaneously without corrupting each
other's trees — :func:`span_trees` reassembles them by parentage.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "SpanRecord",
    "SpanTree",
    "TraceContext",
    "Tracer",
    "get_tracer",
    "span",
    "synthetic",
    "enable",
    "disable",
    "is_enabled",
    "reset",
    "records",
    "capture",
    "render_text",
    "new_trace_id",
    "current_context",
    "current_trace_id",
    "attach",
    "span_trees",
]

#: process-wide id sources (``next()`` is atomic in CPython; ids only need
#: to be unique, not dense)
_TRACE_IDS = itertools.count(1)
_SPAN_IDS = itertools.count(1)


def new_trace_id() -> str:
    """A fresh, process-unique trace id (one per served statement)."""
    return f"trace-{next(_TRACE_IDS):08d}"


@dataclass(frozen=True)
class TraceContext:
    """A portable snapshot of "where am I in the trace forest".

    Carried across thread hops (worker pool) and message envelopes (RPC):
    the receiving side :func:`attach`\\ es it, and every span it opens
    lands under ``span_id`` in trace ``trace_id``.
    """

    trace_id: str
    #: the span on the originating side that new spans should hang under
    span_id: int | None = None
    #: nesting depth already accumulated on the originating side
    depth: int = 0
    #: session name, stamped onto every span opened under this context
    session: str | None = None

    def child(self, session: str | None = None) -> "TraceContext":
        """The same position with a (possibly) different session tag."""
        return TraceContext(self.trace_id, self.span_id, self.depth,
                            session if session is not None else self.session)


@dataclass
class SpanRecord:
    """One completed (or still-open) span, in start order."""

    name: str
    depth: int
    wall_seconds: float = 0.0
    #: ``time.perf_counter()`` at span open — timeline position for trace
    #: export; only deltas between spans of one capture are meaningful
    start_perf: float = 0.0
    #: CostModel1994 elapsed time for the work this span covered
    sim_seconds: float = 0.0
    #: IOStats delta over the span, when the site passed an ``io=`` source
    io: object | None = None
    meta: dict = field(default_factory=dict)
    #: the statement tree this span belongs to (roots mint their own)
    trace_id: str | None = None
    #: process-unique id, assigned when the span opens
    span_id: int = 0
    #: the enclosing span (same or another thread); None for roots
    parent_id: int | None = None

    def format(self) -> str:
        """Render the span as an indented text line."""
        parts = [f"{self.name}  wall={self.wall_seconds * 1e3:.3f} ms"]
        if self.sim_seconds:
            parts.append(f"sim={self.sim_seconds:.3f} s")
        if self.io is not None:
            parts.append(
                f"io={self.io.pages_read}r/{self.io.pages_written}w pages"
            )
        parts.extend(f"{k}={v}" for k, v in self.meta.items())
        return "  ".join(parts)


class _NoopSpan:
    """The shared disabled span: every operation is a no-op."""

    __slots__ = ()
    active = False

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def note(self, **meta) -> None:
        """Ignore annotations while tracing is disabled."""

    def set_sim_seconds(self, seconds: float) -> None:
        """Ignore the simulated-time override while tracing is disabled."""


_NOOP = _NoopSpan()


class _Span:
    """A live span; created only while the tracer is enabled."""

    __slots__ = ("_tracer", "_io_source", "_io_before", "_start", "_sim", "record")

    active = True

    def __init__(self, tracer: "Tracer", name: str, io_source, meta: dict):
        self._tracer = tracer
        self._io_source = io_source
        self._io_before = None
        self._sim: float | None = None
        self.record = SpanRecord(name=name, depth=0, meta=meta)

    def note(self, **meta) -> None:
        """Attach extra key/value annotations to the span."""
        self.record.meta.update(meta)

    def set_sim_seconds(self, seconds: float) -> None:
        """Override the simulated elapsed time (stage-specific cost model)."""
        self._sim = float(seconds)

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        local = tracer._local_state()
        record = self.record
        ctx = local.ctx
        record.span_id = next(_SPAN_IDS)
        if local.stack:
            record.parent_id = local.stack[-1]
            record.trace_id = local.trace_id
        elif ctx is not None:
            # First span on this thread under an adopted context: hang it
            # under the originating side's open span.
            record.parent_id = ctx.span_id
            record.trace_id = ctx.trace_id
        else:
            record.trace_id = new_trace_id()  # a standalone root
        record.depth = local.depth + (ctx.depth if ctx is not None else 0)
        if ctx is not None and ctx.session is not None:
            record.meta.setdefault("session", ctx.session)
        if not local.stack:
            local.trace_id = record.trace_id
        with tracer._lock:
            tracer.records.append(record)  # start order = forest pre-order
        local.depth += 1
        local.stack.append(record.span_id)
        if self._io_source is not None:
            self._io_before = self._io_source.copy()
        self._start = record.start_perf = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        record = self.record
        record.wall_seconds = time.perf_counter() - self._start
        if self._io_source is not None:
            record.io = self._io_source - self._io_before
        if self._sim is not None:
            record.sim_seconds = self._sim
        elif record.io is not None:
            record.sim_seconds = self._tracer.simulated_io_seconds(record.io)
        local = self._tracer._local_state()
        local.depth -= 1
        if local.stack and local.stack[-1] == record.span_id:
            local.stack.pop()
        elif record.span_id in local.stack:  # tolerate out-of-order exits
            local.stack.remove(record.span_id)
        if not local.stack:
            local.trace_id = None
        return False


class _ThreadState(threading.local):
    """Per-thread trace position: adopted context, open spans, depth."""

    def __init__(self) -> None:  # called once per thread by threading.local
        self.ctx: TraceContext | None = None
        self.stack: list[int] = []
        self.depth = 0
        self.trace_id: str | None = None


class Tracer:
    """A span recorder; the module-level singleton serves the whole process."""

    def __init__(self) -> None:
        self.enabled = False
        self.records: list[SpanRecord] = []
        self._lock = threading.Lock()
        self._local = _ThreadState()
        self._cost_model = None

    def _local_state(self) -> _ThreadState:
        return self._local

    @property
    def cost_model(self):
        """The :class:`CostModel1994` used to simulate span times (lazy)."""
        if self._cost_model is None:
            from repro.net.costmodel import CostModel1994

            self._cost_model = CostModel1994()
        return self._cost_model

    def simulated_io_seconds(self, io) -> float:
        """Modeled 1994 elapsed time for an I/O delta (unbuffered page I/O)."""
        return self.cost_model.seconds_per_page_io * (
            io.pages_read + io.pages_written
        )

    def span(self, name: str, io=None, **meta):
        """A context manager covering one stage.

        ``io`` is any object with ``copy()`` and ``__sub__`` (an
        :class:`IOStats` or duck-compatible counter set) whose delta over
        the span should be recorded.  When tracing is disabled this returns
        the shared no-op span immediately.
        """
        if not self.enabled:
            return _NOOP
        return _Span(self, name, io, meta)

    def synthetic(self, name: str, *, start_perf: float,
                  wall_seconds: float, **meta) -> SpanRecord | None:
        """Record an already-completed span at this thread's position.

        For phases whose extent is only known after the fact — e.g. the
        worker-pool queue wait that *preceded* the thread picking the
        statement up.  The record parents exactly like a span opened here
        (enclosing span, else adopted context, else a fresh root) but is
        appended closed, with the caller-supplied timing.  Returns the
        record, or ``None`` while tracing is disabled.
        """
        if not self.enabled:
            return None
        local = self._local
        ctx = local.ctx
        record = SpanRecord(name=name, depth=0, meta=meta,
                            wall_seconds=float(wall_seconds),
                            start_perf=float(start_perf))
        record.span_id = next(_SPAN_IDS)
        if local.stack:
            record.parent_id = local.stack[-1]
            record.trace_id = local.trace_id
        elif ctx is not None:
            record.parent_id = ctx.span_id
            record.trace_id = ctx.trace_id
        else:
            record.trace_id = new_trace_id()
        record.depth = local.depth + (ctx.depth if ctx is not None else 0)
        if ctx is not None and ctx.session is not None:
            record.meta.setdefault("session", ctx.session)
        with self._lock:
            self.records.append(record)
        return record

    def current_context(self, session: str | None = None) -> TraceContext | None:
        """This thread's position, as a portable :class:`TraceContext`.

        Returns the adopted context when no span is open here; ``None``
        when the thread has no trace position at all (the receiver will
        then start a fresh trace).
        """
        local = self._local
        if local.stack:
            return TraceContext(
                trace_id=local.trace_id,
                span_id=local.stack[-1],
                depth=local.depth + (local.ctx.depth if local.ctx else 0),
                session=session if session is not None else (
                    local.ctx.session if local.ctx else None
                ),
            )
        if local.ctx is not None:
            return local.ctx.child(session)
        return None

    @contextmanager
    def attach(self, ctx: TraceContext | None):
        """Adopt ``ctx`` as this thread's trace position for the block.

        The worker-pool side of cross-thread propagation: spans opened
        inside the block parent under ``ctx.span_id`` in ``ctx.trace_id``.
        Attaching ``None`` is a no-op, so call sites need no branching.
        Cheap enough to run unconditionally (no clocks, no allocation
        beyond the restore slot), so the flight recorder gets trace ids
        even while span recording is off.
        """
        local = self._local
        previous = local.ctx
        prev_stack, prev_depth, prev_trace = (
            local.stack, local.depth, local.trace_id
        )
        if ctx is not None:
            local.ctx = ctx
            # a fresh frame: spans opened here must not parent under
            # whatever this (pooled, reused) thread was doing before
            local.stack = []
            local.depth = 0
            local.trace_id = None
        try:
            yield ctx
        finally:
            if ctx is not None:
                local.ctx = previous
                local.stack, local.depth, local.trace_id = (
                    prev_stack, prev_depth, prev_trace
                )

    def reset(self) -> None:
        """Drop every recorded span (the enabled flag is untouched)."""
        with self._lock:
            self.records.clear()
        local = self._local
        local.stack = []
        local.depth = 0
        local.trace_id = None


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer."""
    return _TRACER


def span(name: str, io=None, **meta):
    """Open a span on the process-wide tracer (no-op while disabled)."""
    return _TRACER.span(name, io=io, **meta)


def synthetic(name: str, *, start_perf: float, wall_seconds: float,
              **meta) -> SpanRecord | None:
    """Record a completed span on the process-wide tracer (None if off)."""
    return _TRACER.synthetic(name, start_perf=start_perf,
                             wall_seconds=wall_seconds, **meta)


def enable() -> Tracer:
    """Turn tracing on; returns the tracer for convenience."""
    _TRACER.enabled = True
    return _TRACER


def disable() -> None:
    """Turn tracing off (recorded spans are kept until :func:`reset`)."""
    _TRACER.enabled = False


def is_enabled() -> bool:
    """Is tracing currently enabled?"""
    return _TRACER.enabled


def reset() -> None:
    """Clear the recorded spans on the process-wide tracer."""
    _TRACER.reset()


def records() -> list[SpanRecord]:
    """A copy of the recorded spans, in start order."""
    with _TRACER._lock:
        return list(_TRACER.records)


def current_context(session: str | None = None) -> TraceContext | None:
    """This thread's trace position on the process-wide tracer."""
    return _TRACER.current_context(session=session)


def current_trace_id() -> str | None:
    """The trace id active on this thread, if any (works while disabled)."""
    local = _TRACER._local
    if local.trace_id is not None:
        return local.trace_id
    return local.ctx.trace_id if local.ctx is not None else None


def attach(ctx: TraceContext | None):
    """Adopt a propagated context on this thread (see :meth:`Tracer.attach`)."""
    return _TRACER.attach(ctx)


@contextmanager
def capture():
    """Enable tracing for a block; yields a list filled with its spans.

    The previous enabled state is restored on exit, so a ``capture()``
    inside an already-enabled session is harmless.
    """
    previous = _TRACER.enabled
    mark = len(_TRACER.records)
    _TRACER.enabled = True
    out: list[SpanRecord] = []
    try:
        yield out
    finally:
        _TRACER.enabled = previous
        with _TRACER._lock:
            out.extend(_TRACER.records[mark:])


@dataclass
class SpanTree:
    """One node of a reassembled trace tree."""

    record: SpanRecord
    children: list["SpanTree"] = field(default_factory=list)

    def walk(self):
        """Yield this node and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()


def span_trees(spans: list[SpanRecord] | None = None) -> list[SpanTree]:
    """Reassemble span records into parentage trees (one per root).

    Spans recorded from worker threads land under the statement span that
    propagated their context, so a served statement comes back as exactly
    one tree.  A span whose parent is missing from ``spans`` becomes a
    root (the capture window clipped its ancestors).
    """
    spans = records() if spans is None else spans
    nodes = {s.span_id: SpanTree(s) for s in spans}
    roots: list[SpanTree] = []
    for s in spans:
        node = nodes[s.span_id]
        parent = nodes.get(s.parent_id) if s.parent_id is not None else None
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    return roots


def render_text(spans: list[SpanRecord] | None = None) -> str:
    """The span list as an indented tree (start order, depth-indented)."""
    spans = records() if spans is None else spans
    return "\n".join("  " * s.depth + s.format() for s in spans)
