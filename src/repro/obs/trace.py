"""Hierarchical trace spans for the whole pipeline of Figure 7.

A span covers one named stage (``lfm.read_ranges``, ``executor.select``,
``dx.render``...) and records three things when it closes:

* **wall seconds** — real elapsed time of this implementation;
* **simulated seconds** — what the calibrated
  :class:`~repro.net.costmodel.CostModel1994` says the 1994 testbed would
  have spent (derived from the span's I/O delta unless the instrumented
  site supplies a better stage model);
* **an I/O delta** — the :class:`~repro.storage.device.IOStats` movement of
  whatever counter object the site passed as ``io=``.

Tracing is **off by default** and the disabled path is a single flag check
returning a shared no-op span, so instrumented code performs no clock
reads, no stat snapshots, and — critically — no storage I/O of its own:
the Table 3/4 page counts are bit-identical with the layer on or off (the
recorder only ever *reads* counters; qblint's ``no-direct-iostats-mutation``
rule keeps it that way).

Spans nest: the tracer tracks depth, so :func:`render_text` can print the
record list as an indented tree.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "span",
    "enable",
    "disable",
    "is_enabled",
    "reset",
    "records",
    "capture",
    "render_text",
]


@dataclass
class SpanRecord:
    """One completed (or still-open) span, in start order."""

    name: str
    depth: int
    wall_seconds: float = 0.0
    #: CostModel1994 elapsed time for the work this span covered
    sim_seconds: float = 0.0
    #: IOStats delta over the span, when the site passed an ``io=`` source
    io: object | None = None
    meta: dict = field(default_factory=dict)

    def format(self) -> str:
        """Render the span as an indented text line."""
        parts = [f"{self.name}  wall={self.wall_seconds * 1e3:.3f} ms"]
        if self.sim_seconds:
            parts.append(f"sim={self.sim_seconds:.3f} s")
        if self.io is not None:
            parts.append(
                f"io={self.io.pages_read}r/{self.io.pages_written}w pages"
            )
        parts.extend(f"{k}={v}" for k, v in self.meta.items())
        return "  ".join(parts)


class _NoopSpan:
    """The shared disabled span: every operation is a no-op."""

    __slots__ = ()
    active = False

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def note(self, **meta) -> None:
        """Ignore annotations while tracing is disabled."""

    def set_sim_seconds(self, seconds: float) -> None:
        """Ignore the simulated-time override while tracing is disabled."""


_NOOP = _NoopSpan()


class _Span:
    """A live span; created only while the tracer is enabled."""

    __slots__ = ("_tracer", "_io_source", "_io_before", "_start", "_sim", "record")

    active = True

    def __init__(self, tracer: "Tracer", name: str, io_source, meta: dict):
        self._tracer = tracer
        self._io_source = io_source
        self._io_before = None
        self._sim: float | None = None
        self.record = SpanRecord(name=name, depth=0, meta=meta)

    def note(self, **meta) -> None:
        """Attach extra key/value annotations to the span."""
        self.record.meta.update(meta)

    def set_sim_seconds(self, seconds: float) -> None:
        """Override the simulated elapsed time (stage-specific cost model)."""
        self._sim = float(seconds)

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        self.record.depth = tracer._depth
        tracer._depth += 1
        tracer.records.append(self.record)  # start order = tree pre-order
        if self._io_source is not None:
            self._io_before = self._io_source.copy()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        record = self.record
        record.wall_seconds = time.perf_counter() - self._start
        if self._io_source is not None:
            record.io = self._io_source - self._io_before
        if self._sim is not None:
            record.sim_seconds = self._sim
        elif record.io is not None:
            record.sim_seconds = self._tracer.simulated_io_seconds(record.io)
        self._tracer._depth -= 1
        return False


class Tracer:
    """A span recorder; the module-level singleton serves the whole process."""

    def __init__(self) -> None:
        self.enabled = False
        self.records: list[SpanRecord] = []
        self._depth = 0
        self._cost_model = None

    @property
    def cost_model(self):
        """The :class:`CostModel1994` used to simulate span times (lazy)."""
        if self._cost_model is None:
            from repro.net.costmodel import CostModel1994

            self._cost_model = CostModel1994()
        return self._cost_model

    def simulated_io_seconds(self, io) -> float:
        """Modeled 1994 elapsed time for an I/O delta (unbuffered page I/O)."""
        return self.cost_model.seconds_per_page_io * (
            io.pages_read + io.pages_written
        )

    def span(self, name: str, io=None, **meta):
        """A context manager covering one stage.

        ``io`` is any object with ``copy()`` and ``__sub__`` (an
        :class:`IOStats` or duck-compatible counter set) whose delta over
        the span should be recorded.  When tracing is disabled this returns
        the shared no-op span immediately.
        """
        if not self.enabled:
            return _NOOP
        return _Span(self, name, io, meta)

    def reset(self) -> None:
        """Drop every recorded span (the enabled flag is untouched)."""
        self.records.clear()
        self._depth = 0


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer."""
    return _TRACER


def span(name: str, io=None, **meta):
    """Open a span on the process-wide tracer (no-op while disabled)."""
    return _TRACER.span(name, io=io, **meta)


def enable() -> Tracer:
    """Turn tracing on; returns the tracer for convenience."""
    _TRACER.enabled = True
    return _TRACER


def disable() -> None:
    """Turn tracing off (recorded spans are kept until :func:`reset`)."""
    _TRACER.enabled = False


def is_enabled() -> bool:
    """Is tracing currently enabled?"""
    return _TRACER.enabled


def reset() -> None:
    """Clear the recorded spans on the process-wide tracer."""
    _TRACER.reset()


def records() -> list[SpanRecord]:
    """A copy of the recorded spans, in start order."""
    return list(_TRACER.records)


@contextmanager
def capture():
    """Enable tracing for a block; yields a list filled with its spans.

    The previous enabled state is restored on exit, so a ``capture()``
    inside an already-enabled session is harmless.
    """
    previous = _TRACER.enabled
    mark = len(_TRACER.records)
    _TRACER.enabled = True
    out: list[SpanRecord] = []
    try:
        yield out
    finally:
        _TRACER.enabled = previous
        out.extend(_TRACER.records[mark:])


def render_text(spans: list[SpanRecord] | None = None) -> str:
    """The span list as an indented tree (start order, depth-indented)."""
    spans = _TRACER.records if spans is None else spans
    return "\n".join("  " * s.depth + s.format() for s in spans)
