"""EXPLAIN ANALYZE support: per-operator execution profiles and rendering.

The executor fills a :class:`PlanProfile` while running the statement (one
:class:`OperatorStats` per nested-loop level plus one for the output
stage); :func:`render_analyzed_plan` then prints the plan tree the planner
chose, annotated with the rows each operator examined and produced, the
wall time spent there, and the 4 KiB page I/Os it triggered — the same
per-stage breakdown Tables 3 and 4 are built from, but per operator.

This module is deliberately free of ``repro.db`` imports: the executor
hands it a duck-typed plan (``table_order`` / ``level_predicates`` /
``index_probes``), so the dependency points from the engine to the
observability layer, never back.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["OperatorStats", "PlanProfile", "render_analyzed_plan"]


@dataclass
class OperatorStats:
    """What one plan operator did during an EXPLAIN ANALYZE run."""

    #: rows the operator examined (scan/probe output before its predicates)
    rows_in: int = 0
    #: rows that survived the operator's predicates
    rows_out: int = 0
    wall_seconds: float = 0.0
    #: 4 KiB LFM page reads attributed to this operator
    page_ios: int = 0
    #: the planner's estimate of ``rows_out`` (None when the plan carried
    #: no estimates — e.g. a hand-built plan object)
    est_rows: float | None = None

    def annotate(self) -> str:
        """The stats suffix appended to the operator's plan line."""
        est = (
            f"est rows={int(round(self.est_rows))}, "
            if self.est_rows is not None else ""
        )
        return (
            f"({est}rows examined={self.rows_in}, matched={self.rows_out}, "
            f"time={self.wall_seconds * 1e3:.2f} ms, page I/Os={self.page_ios})"
        )


@dataclass
class PlanProfile:
    """Execution profile of one SELECT, filled in by the executor."""

    plan: object | None = None
    #: one entry per nested-loop level, in plan order
    levels: list[OperatorStats] = field(default_factory=list)
    #: the projection / aggregation / order / limit stage
    output: OperatorStats = field(default_factory=OperatorStats)
    wall_seconds: float = 0.0
    page_ios: int = 0
    rowcount: int = 0

    def attach(self, plan) -> None:
        """Bind the plan the executor chose; allocates per-level stats.

        Cost-based plans carry per-level row estimates (``est_rows``) and
        a statement output estimate (``est_out``); both are copied onto
        the operator stats so the rendering shows estimated next to
        actual rows.
        """
        self.plan = plan
        estimates = list(getattr(plan, "est_rows", ()) or ())
        self.levels = [
            OperatorStats(est_rows=estimates[i] if i < len(estimates) else None)
            for i, _ in enumerate(plan.table_order)
        ]
        self.output.est_rows = getattr(plan, "est_out", None)


def _level_label(plan, level: int) -> str:
    """The access-path label for one level (mirrors ``Plan.describe``)."""
    ref = plan.table_order[level]
    preds = plan.level_predicates[level]
    label = f"{ref.name}" + (f" {ref.alias}" if ref.alias else "")
    probe = plan.index_probes[level] if level < len(plan.index_probes) else None
    spatial_probes = getattr(plan, "spatial_probes", None) or []
    spatial = spatial_probes[level] if level < len(spatial_probes) else None
    if probe:
        access = f"probe {label} via index({probe[0]})"
    elif spatial:
        access = f"probe {label} via spatial({spatial[0]})"
    else:
        access = f"scan {label}"
    suffix = f" [{len(preds)} predicate(s)]" if preds else ""
    return access + suffix


def render_analyzed_plan(profile: PlanProfile, io=None, work=None) -> list[str]:
    """The annotated plan tree as display lines, one per operator.

    ``io`` (an IOStats delta) and ``work`` (WorkCounters) are the
    statement-level totals; when given, a trailing summary line reports
    them next to the simulated 1994 Starburst time so EXPLAIN ANALYZE
    output reads like one row of Table 3.
    """
    plan = profile.plan
    lines: list[str] = []
    for level, stats in enumerate(profile.levels):
        lines.append("  " * level + f"{_level_label(plan, level)}  {stats.annotate()}")
    out = profile.output
    out_est = (
        f"est rows={int(round(out.est_rows))}, "
        if out.est_rows is not None else ""
    )
    lines.append(
        f"output: {out.rows_out} row(s)  "
        f"({out_est}rows in={out.rows_in}, time={out.wall_seconds * 1e3:.2f} ms, "
        f"page I/Os={out.page_ios})"
    )
    summary = (
        f"total: {profile.rowcount} row(s) in {profile.wall_seconds * 1e3:.2f} ms, "
        f"{profile.page_ios} page I/O(s)"
    )
    if io is not None:
        from repro.net.costmodel import CostModel1994

        model = CostModel1994()
        sim = model.starburst_real_seconds(work, io) if work is not None else (
            model.seconds_per_page_io * io.pages_read
        )
        summary += (
            f"; statement I/O: {io.pages_read} pages / {io.bytes_read} bytes read"
            f"; simulated 1994 Starburst real time: {sim:.2f} s"
        )
    lines.append(summary)
    return lines
