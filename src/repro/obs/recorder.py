"""Flight recorder: an always-on ring of recent statements plus incidents.

The paper argues from *measured* I/O; a production service needs the same
evidence available after the fact.  The :class:`FlightRecorder` keeps a
bounded, lock-cheap ring buffer of completed-statement summaries
(:class:`QueryRecord`: canonical SQL, session, rows, page I/Os, result
cache hit, pool wait, wall time and the simulated 1994 time for the same
I/O) and *dumps on trigger*: a statement slower than the configured
threshold, a statement that raised, or a write-ahead-log recovery each
produce a self-contained JSON **incident report** — the trigger, the ring
contents at that moment, and a full metrics snapshot — which is what a
human needs to debug a service they were not watching.

Recording is on by default and deliberately cheap: one thread-local
lookup to find the statement scope, one deque append under a mutex to
retire it.  It never touches :class:`~repro.storage.device.IOStats`
counters (it only copies deltas handed to it), so the Table 3/4 page
accounting is bit-identical with the recorder on or off.

Nesting contract: the *outermost* scope on a thread owns the record.  The
serving layer opens a scope on the worker thread (tagging session, pool
wait, cache hits) and :meth:`Database.execute <repro.db.database.
Database.execute>` opens one unconditionally — when it finds a scope
already active on the thread it annotates that record instead of emitting
a second one, so served and standalone statements both yield exactly one
record.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path

from repro.obs import metrics, qlog

__all__ = [
    "QueryRecord",
    "FlightRecorder",
    "get_recorder",
    "statement",
    "annotate",
    "incident",
    "configure",
    "enable",
    "disable",
    "reset",
]

_SECONDS_PER_PAGE_IO: float | None = None

#: sentinel for :meth:`FlightRecorder.configure` knobs left unchanged
_KEEP = object()


def _sim_seconds(pages: int) -> float:
    """Simulated 1994 elapsed seconds for ``pages`` 4 KiB I/Os (lazy model)."""
    global _SECONDS_PER_PAGE_IO
    if _SECONDS_PER_PAGE_IO is None:
        from repro.net.costmodel import CostModel1994

        _SECONDS_PER_PAGE_IO = CostModel1994().seconds_per_page_io
    return _SECONDS_PER_PAGE_IO * pages


@dataclass
class QueryRecord:
    """One completed statement, as the flight recorder remembers it."""

    sql: str
    trace_id: str | None = None
    session: str | None = None
    kind: str | None = None          #: "read" / "write" / "explain"
    ok: bool = True
    error: str | None = None
    rows: int = 0
    pages_read: int = 0
    pages_written: int = 0
    bytes_read: int = 0
    cache_hit: bool = False          #: served from the result cache
    pool_wait_seconds: float = 0.0   #: admission-queue time (served only)
    wall_seconds: float = 0.0
    sim_seconds_1994: float = 0.0
    started_unix: float = 0.0        #: wall-clock start (epoch seconds)
    params: tuple = ()               #: reprs of bound parameters, truncated
    shard: str | None = None         #: serving shard id (cluster legs only)

    def to_dict(self) -> dict:
        """The record as a JSON-ready dict (stable key set)."""
        return {
            "sql": self.sql,
            "trace_id": self.trace_id,
            "session": self.session,
            "shard": self.shard,
            "kind": self.kind,
            "ok": self.ok,
            "error": self.error,
            "rows": self.rows,
            "pages_read": self.pages_read,
            "pages_written": self.pages_written,
            "bytes_read": self.bytes_read,
            "cache_hit": self.cache_hit,
            "pool_wait_ms": round(self.pool_wait_seconds * 1e3, 3),
            "wall_ms": round(self.wall_seconds * 1e3, 3),
            "sim_seconds_1994": round(self.sim_seconds_1994, 4),
            "started_unix": self.started_unix,
            "params": list(self.params),
        }


class _NoopScope:
    """Shared scope while recording is disabled: every operation no-ops."""

    __slots__ = ()
    active = False

    def __enter__(self) -> "_NoopScope":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def note(self, **fields) -> None:
        """Ignore annotations while recording is disabled."""


_NOOP_SCOPE = _NoopScope()

#: per-thread active statement scope (the outermost owns the record)
_ACTIVE = threading.local()


class _StatementScope:
    """Context manager covering one statement; the outermost scope emits."""

    __slots__ = ("_recorder", "_fields", "_root", "_start", "record")

    active = True

    def __init__(self, recorder: "FlightRecorder", sql: str, fields: dict):
        self._recorder = recorder
        self._fields = fields
        self._root = False
        self.record = QueryRecord(sql=sql)

    def note(self, *, rows: int | None = None, io=None,
             cache_hit: bool | None = None,
             pool_wait_seconds: float | None = None,
             kind: str | None = None, sql: str | None = None,
             session: str | None = None, trace_id: str | None = None,
             params=None, shard: str | None = None) -> None:
        """Annotate the owning record (outermost scope wins on conflicts).

        ``io`` is an :class:`~repro.storage.device.IOStats` delta; only
        its counters are copied, the object is never mutated.
        """
        target = getattr(_ACTIVE, "scope", None)
        record = target.record if target is not None else self.record
        if rows is not None:
            record.rows = rows
        if io is not None:
            # These are QueryRecord fields, not live IOStats counters: the
            # delta's values are copied out, never written back.
            record.pages_read = io.pages_read        # qblint: disable=no-direct-iostats-mutation
            record.pages_written = io.pages_written  # qblint: disable=no-direct-iostats-mutation
            record.bytes_read = io.bytes_read        # qblint: disable=no-direct-iostats-mutation
        if cache_hit is not None:
            record.cache_hit = cache_hit
        if pool_wait_seconds is not None:
            record.pool_wait_seconds = pool_wait_seconds
        if kind is not None:
            record.kind = kind
        if sql is not None:
            record.sql = sql
        if session is not None:
            record.session = session
        if trace_id is not None:
            record.trace_id = trace_id
        if params is not None:
            record.params = tuple(repr(p)[:80] for p in params)
        if shard is not None:
            record.shard = shard

    def __enter__(self) -> "_StatementScope":
        outer = getattr(_ACTIVE, "scope", None)
        if outer is None:
            self._root = True
            _ACTIVE.scope = self
            record = self.record
            for key, value in self._fields.items():
                if value is not None:
                    setattr(record, key, value)
            record.started_unix = time.time()
            self._start = time.perf_counter()
        else:
            # Nested under the serving layer's scope: contribute what the
            # inner layer knows (the statement kind) to the owning record.
            self.note(**{k: v for k, v in self._fields.items()
                         if v is not None})
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self._root:
            return False
        _ACTIVE.scope = None
        record = self.record
        record.wall_seconds = time.perf_counter() - self._start
        record.sim_seconds_1994 = _sim_seconds(
            record.pages_read + record.pages_written
        )
        if exc is not None:
            record.ok = False
            record.error = f"{type(exc).__name__}: {exc}"
        self._recorder._finish(record)
        return False


class FlightRecorder:
    """Bounded ring of completed statements with dump-on-trigger incidents."""

    def __init__(self, capacity: int = 512, incident_capacity: int = 32):
        self.enabled = True
        self.capacity = capacity
        self._ring: deque[QueryRecord] = deque(maxlen=capacity)
        self._incidents: deque[dict] = deque(maxlen=incident_capacity)
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        #: wall-seconds threshold for the slow-query trigger (None = off)
        self.slow_threshold_seconds: float | None = None
        #: when set, every incident is also written here as a JSON file
        self.incident_dir: Path | None = None
        self.recorded = 0

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def statement(self, sql: str, *, session: str | None = None,
                  trace_id: str | None = None, kind: str | None = None):
        """A scope covering one statement's execution.

        The outermost scope on a thread owns the resulting record; nested
        scopes (``Database.execute`` under the serving layer) annotate it
        via :meth:`_StatementScope.note` instead of emitting their own.
        """
        if not self.enabled:
            return _NOOP_SCOPE
        return _StatementScope(
            self, sql,
            {"session": session, "trace_id": trace_id, "kind": kind},
        )

    def _finish(self, record: QueryRecord) -> None:
        with self._lock:
            self._ring.append(record)
            self.recorded += 1
        metrics.counter("recorder.records").inc()
        if not record.ok:
            metrics.counter("recorder.errors").inc()
        # Statement-digest accounting rides the same chokepoint (lazy
        # import: digest pulls the SQL parser, which obs must not load at
        # import time).
        from repro.obs import digest as digest_mod

        digest_mod.observe(record)
        qlog.get_query_log().emit(record)
        if not record.ok:
            self.incident("query.error", trigger=record.to_dict())
        elif (self.slow_threshold_seconds is not None
              and record.wall_seconds >= self.slow_threshold_seconds):
            self.incident("query.slow", trigger=record.to_dict())

    def recent(self, n: int = 50) -> list[QueryRecord]:
        """The newest ``n`` records, most recent first."""
        with self._lock:
            items = list(self._ring)
        return list(reversed(items))[:max(0, n)]

    # ------------------------------------------------------------------ #
    # incidents
    # ------------------------------------------------------------------ #

    def incident(self, reason: str, trigger: dict | None = None) -> dict:
        """Dump the recorder into a self-contained JSON incident report.

        ``reason`` names the trigger (``query.slow``, ``query.error``,
        ``wal.recovery``); ``trigger`` carries its specifics.  The report
        bundles the ring contents and a metrics snapshot, so it can be
        read (or shipped) without access to the live process.
        """
        from repro.obs import digest as digest_mod

        report = {
            "incident": next(self._seq),
            "reason": reason,
            "created_unix": time.time(),
            "trigger": trigger or {},
            "recent_queries": [r.to_dict() for r in self.recent(self.capacity)],
            "digests": digest_mod.get_table().top(10),
            "metrics": metrics.snapshot(),
        }
        with self._lock:
            self._incidents.append(report)
        metrics.counter("recorder.incidents").inc()
        directory = self.incident_dir
        if directory is not None:
            directory = Path(directory)
            directory.mkdir(parents=True, exist_ok=True)
            name = f"incident-{report['incident']:04d}-{reason.replace('.', '-')}.json"
            (directory / name).write_text(json.dumps(report, indent=2) + "\n")
        return report

    def incidents(self) -> list[dict]:
        """Every retained incident report, oldest first."""
        with self._lock:
            return list(self._incidents)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def configure(self, *, slow_threshold_seconds=_KEEP, incident_dir=_KEEP,
                  capacity: int | None = None) -> None:
        """Adjust triggers and sizing (omitted knobs keep their value)."""
        if slow_threshold_seconds is not _KEEP:
            self.slow_threshold_seconds = slow_threshold_seconds
        if incident_dir is not _KEEP:
            self.incident_dir = Path(incident_dir) if incident_dir else None
        if capacity is not None and capacity != self.capacity:
            with self._lock:
                self.capacity = capacity
                self._ring = deque(self._ring, maxlen=capacity)

    def reset(self) -> None:
        """Drop records and incidents (configuration is untouched)."""
        with self._lock:
            self._ring.clear()
            self._incidents.clear()
            self.recorded = 0

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (
            f"FlightRecorder({state}, {len(self._ring)}/{self.capacity} "
            f"records, {len(self._incidents)} incidents)"
        )


_RECORDER = FlightRecorder()


def get_recorder() -> FlightRecorder:
    """The process-wide flight recorder."""
    return _RECORDER


def statement(sql: str, **kwargs):
    """Open a statement scope on the process-wide recorder."""
    return _RECORDER.statement(sql, **kwargs)


def annotate(**fields) -> None:
    """Annotate this thread's active statement record, if any.

    Lets layers without a scope handle (the result cache's hit path, the
    RPC channel) contribute fields; a no-op when no statement is open.
    """
    scope = getattr(_ACTIVE, "scope", None)
    if scope is not None:
        scope.note(**fields)


def incident(reason: str, trigger: dict | None = None) -> dict:
    """Emit an incident report on the process-wide recorder."""
    return _RECORDER.incident(reason, trigger=trigger)


def configure(**kwargs) -> None:
    """Configure the process-wide recorder (see :meth:`FlightRecorder.configure`)."""
    _RECORDER.configure(**kwargs)


def enable() -> FlightRecorder:
    """Turn recording on (the default); returns the recorder."""
    _RECORDER.enabled = True
    return _RECORDER


def disable() -> None:
    """Turn recording off (kept records remain until :func:`reset`)."""
    _RECORDER.enabled = False


def reset() -> None:
    """Clear the process-wide recorder's records and incidents."""
    _RECORDER.reset()
