"""Structured query log: opt-in JSON-lines stream of completed statements.

The flight recorder (:mod:`repro.obs.recorder`) summarizes every finished
statement into a :class:`~repro.obs.recorder.QueryRecord`; when a query
log is open, each record is additionally appended to a JSON-lines file —
one self-describing event per line, the format every log shipper speaks.

Two modes:

* **full** — every statement is logged (`slow_only=False`);
* **slow-query log** — only statements at or above ``slow_threshold``
  wall seconds are written, the classic production posture where the log
  stays quiet until something is worth looking at.

The log is off by default and costs one flag check per statement while
closed.  Writes are serialized by a mutex and flushed per line so an
operator can ``tail -f`` the file while the server runs.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

from repro.errors import ValidationError

__all__ = ["QueryLog", "get_query_log", "enable", "disable", "is_enabled"]


class QueryLog:
    """A JSON-lines sink for completed-statement records."""

    def __init__(self) -> None:
        self._fh = None
        self._lock = threading.Lock()
        self.path: Path | None = None
        self.slow_only = False
        self.slow_threshold = 1.0
        self.events_written = 0

    @property
    def enabled(self) -> bool:
        """Is a log file currently open?"""
        return self._fh is not None

    def open(self, path, slow_only: bool = False,
             slow_threshold: float = 1.0) -> Path:
        """Start logging to ``path`` (parent directories are created).

        ``slow_only`` turns this into a slow-query log: only statements
        whose wall time is >= ``slow_threshold`` seconds are written.
        """
        if slow_threshold < 0:
            raise ValidationError("slow-query threshold cannot be negative")
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with self._lock:
            if self._fh is not None:
                self._fh.close()
            self._fh = open(path, "a", encoding="utf-8")
            self.path = path
            self.slow_only = slow_only
            self.slow_threshold = slow_threshold
            self.events_written = 0  # counts events on the current file
        return path

    def emit(self, record) -> bool:
        """Write one completed-statement event; returns True if written.

        ``record`` is any object with ``to_dict()`` and ``wall_seconds``
        (a :class:`~repro.obs.recorder.QueryRecord`).  Never raises on a
        closed log — the serving path must not fail because logging is
        off.
        """
        fh = self._fh
        if fh is None:
            return False
        slow = record.wall_seconds >= self.slow_threshold
        # Errors are always interesting: even a slow-only log records a
        # statement that raised, however fast it failed.
        if self.slow_only and not slow and getattr(record, "ok", True):
            return False
        event = {"event": "query", "slow": slow}
        event.update(record.to_dict())
        line = json.dumps(event, separators=(",", ":"))
        with self._lock:
            if self._fh is None:
                return False
            self._fh.write(line + "\n")
            self._fh.flush()
            self.events_written += 1
        return True

    def close(self) -> None:
        """Stop logging and close the file (idempotent)."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __repr__(self) -> str:
        state = f"-> {self.path}" if self.enabled else "closed"
        mode = "slow-only " if self.slow_only else ""
        return f"QueryLog({mode}{state}, {self.events_written} events)"


_QLOG = QueryLog()


def get_query_log() -> QueryLog:
    """The process-wide query log."""
    return _QLOG


def enable(path, slow_only: bool = False, slow_threshold: float = 1.0) -> Path:
    """Open the process-wide query log at ``path``."""
    return _QLOG.open(path, slow_only=slow_only, slow_threshold=slow_threshold)


def disable() -> None:
    """Close the process-wide query log."""
    _QLOG.close()


def is_enabled() -> bool:
    """Is the process-wide query log open?"""
    return _QLOG.enabled
