"""Metrics federation: one Prometheus page for a whole cluster.

Each cluster node (router, every shard primary, every attached replica)
owns a per-node :class:`~repro.obs.metrics.MetricsRegistry` fed by the
scoped-registry tee (:func:`repro.obs.metrics.scoped`).  Federation
scrapes every node's registry — in-process today, but each target is just
``labels + a callable returning exposition text``, so an HTTP scrape over
:mod:`repro.net` sockets slots in without changing the merge — and folds
the pages into **one** exposition the router serves at ``/metrics``:

* **counters** are summed across nodes into a single sample;
* **gauges** stay per-node, labeled with the node's identity
  (``shard="0",role="primary"``) — a replica-lag gauge averaged across
  nodes would be meaningless;
* **histograms** are bucket-merged: per-``le`` cumulative counts, sums and
  counts added, so fleet-wide quantile estimates come from the merged
  distribution.

Every target additionally yields a ``federation_up`` gauge (1/0), so a
node whose scrape fails is visible in the page instead of silently
missing.  The merge round-trips through the validating parser in
:mod:`repro.obs.promtext` — federation consumes exactly what a real
scraper would.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.obs import metrics, promtext

__all__ = [
    "ScrapeTarget",
    "in_process_target",
    "federate",
    "federated_snapshot",
]


@dataclass(frozen=True)
class ScrapeTarget:
    """One federated node: identity labels plus a scrape callable.

    ``scrape`` returns Prometheus exposition text for the node (for
    in-process nodes, :func:`repro.obs.promtext.render` over the node's
    registry); ``labels`` identify the node on every per-node sample
    (``role`` always, ``shard`` for shard-resident nodes).
    """

    name: str
    labels: dict[str, str] = field(default_factory=dict)
    scrape: Callable[[], str] = lambda: ""


def in_process_target(name: str, registry: "metrics.MetricsRegistry",
                      **labels: str) -> ScrapeTarget:
    """A target that scrapes an in-process registry directly."""
    return ScrapeTarget(name=name, labels=dict(labels),
                        scrape=lambda: promtext.render(registry))


def _escape(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"')


def _label_str(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{_escape(value)}"'
                     for key, value in sorted(labels.items()))
    return "{" + inner + "}"


def _scrape_all(targets) -> list[tuple["ScrapeTarget", dict | None]]:
    """Parse every target's page; a failed scrape/parse yields ``None``."""
    out = []
    for target in targets:
        try:
            families = promtext.parse(target.scrape())
        # A down node must not take the federated page with it; any
        # scrape/parse failure becomes federation_up 0 for that target.
        except Exception:  # qblint: disable=no-broad-except
            metrics.counter("federation.scrape_errors").inc()
            families = None
        out.append((target, families))
    return out


def _bucket_sort_key(le: str) -> float:
    return math.inf if le == "+Inf" else float(le)


def federate(targets) -> str:
    """Merge every target's exposition into one federated page.

    Returns Prometheus text that re-parses with
    :func:`repro.obs.promtext.parse`: counters summed, gauges labeled
    per-node, histograms bucket-merged, plus one ``federation_up`` sample
    per target.
    """
    scraped = _scrape_all(targets)
    # family -> {"type": kind, "per_target": [(target, samples)]}
    merged: dict[str, dict] = {}
    for target, families in scraped:
        if families is None:
            continue
        for family, data in families.items():
            slot = merged.setdefault(family, {"type": data["type"],
                                              "per_target": []})
            if slot["type"] != data["type"]:
                # Disagreeing nodes: keep the first kind, skip the rest
                # (cannot merge a counter with a gauge).
                metrics.counter("federation.type_conflicts").inc()
                continue
            slot["per_target"].append((target, data["samples"]))

    lines: list[str] = []
    for family in sorted(merged):
        slot = merged[family]
        kind = slot["type"]
        lines.append(f"# TYPE {family} {kind}")
        if kind == "counter":
            total = sum(value for _, samples in slot["per_target"]
                        for name, _, value in samples if name == family)
            value = int(total) if float(total).is_integer() else total
            lines.append(f"{family} {value}")
        elif kind == "histogram":
            _merge_histogram(family, slot["per_target"], lines)
        else:  # gauge (and anything untyped): per-node labeled samples
            for target, samples in slot["per_target"]:
                for name, _, value in samples:
                    if name == family:
                        labels = target.labels or {"instance": target.name}
                        lines.append(
                            f"{family}{_label_str(labels)} "
                            f"{promtext._format_value(value)}"
                        )
    lines.append("# TYPE federation_up gauge")
    for target, families in scraped:
        labels = target.labels or {"instance": target.name}
        lines.append(
            f"federation_up{_label_str(labels)} "
            f"{1 if families is not None else 0}"
        )
    return "\n".join(lines) + "\n"


def _merge_histogram(family: str, per_target, lines: list[str]) -> None:
    """Append the bucket-merged triplet for one histogram family."""
    buckets: dict[str, float] = {}
    total_sum = 0.0
    total_count = 0.0
    for _, samples in per_target:
        for name, labels, value in samples:
            if name == family + "_bucket":
                le = labels.get("le", "+Inf")
                buckets[le] = buckets.get(le, 0.0) + value
            elif name == family + "_sum":
                total_sum += value
            elif name == family + "_count":
                total_count += value
    for le in sorted(buckets, key=_bucket_sort_key):
        if le == "+Inf":
            continue
        value = buckets[le]
        value = int(value) if value.is_integer() else value
        lines.append(f'{family}_bucket{{le="{le}"}} {value}')
    count = int(total_count) if total_count.is_integer() else total_count
    lines.append(f'{family}_bucket{{le="+Inf"}} {count}')
    lines.append(f"{family}_sum {promtext._format_value(total_sum)}")
    lines.append(f"{family}_count {count}")


def federated_snapshot(targets) -> dict:
    """The fleet as one snapshot-shaped dict (for the SLO engine).

    Shaped like :func:`repro.obs.metrics.snapshot` — ``counters`` summed,
    ``gauges`` folded with ``max`` (objectives bound worst-case ceilings),
    ``histograms`` bucket-merged with snapshot-style per-bucket counts —
    but keyed by *sanitized* metric names, since it is reassembled from
    exposition text.  The SLO engine sanitizes its objective metric names
    the same way, so both spellings address the same series.
    """
    out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
    for target, families in _scrape_all(targets):
        if families is None:
            continue
        for family, data in families.items():
            kind = data["type"]
            if kind == "counter":
                for name, _, value in data["samples"]:
                    if name == family:
                        out["counters"][family] = (
                            out["counters"].get(family, 0) + value
                        )
            elif kind == "gauge":
                for name, _, value in data["samples"]:
                    if name == family:
                        current = out["gauges"].get(family)
                        out["gauges"][family] = (
                            value if current is None else max(current, value)
                        )
            elif kind == "histogram":
                slot = out["histograms"].setdefault(
                    family, {"count": 0, "sum": 0.0, "buckets": {}}
                )
                cumulative: list[tuple[float, float]] = []
                for name, labels, value in data["samples"]:
                    if name == family + "_sum":
                        slot["sum"] += value
                    elif name == family + "_count":
                        slot["count"] += value
                    elif name == family + "_bucket":
                        le = labels.get("le", "+Inf")
                        cumulative.append((_bucket_sort_key(le), value))
                cumulative.sort()
                previous = 0.0
                for bound, cum in cumulative:
                    key = "inf" if math.isinf(bound) else str(bound)
                    slot["buckets"][key] = (
                        slot["buckets"].get(key, 0) + (cum - previous)
                    )
                    previous = cum
    return out
