"""QBISM reproduction: an extensible DBMS for 3-D medical images.

This package reproduces the system described in *"QBISM: Extending a DBMS to
Support 3D Medical Images"* (Arya, Cody, Faloutsos, Richardson, Toga — ICDE
1994): REGION and VOLUME spatial data types stored as Hilbert-ordered runs
and intensity lists inside an extensible relational DBMS, plus the full
surrounding system (storage engine, SQL layer, medical schema, network and
visualization components) used in the paper's evaluation.

Quickstart::

    from repro import QbismSystem
    system = QbismSystem.build_demo(seed=1994, grid_side=64)
    result = system.query_structure(study_id=1, structure_name="ntal1")
    print(result.timing)

See ``README.md`` for the architecture overview and ``DESIGN.md`` for the
module inventory and per-experiment index.
"""

from __future__ import annotations

from repro._version import __version__
from repro.curves import GridSpec, HilbertCurve, MortonCurve, RowMajorCurve, curve_for_grid
from repro.errors import ReproError

__all__ = [
    "__version__",
    "ReproError",
    "GridSpec",
    "HilbertCurve",
    "MortonCurve",
    "RowMajorCurve",
    "curve_for_grid",
    # Lazy re-exports, provided by __getattr__ below rather than statically.
    "Region",  # qblint: disable=consistent-all
    "Volume",  # qblint: disable=consistent-all
    "DataRegion",  # qblint: disable=consistent-all
    "QbismSystem",  # qblint: disable=consistent-all
]


def __getattr__(name: str):
    # Lazy re-exports: keep `import repro` light while exposing the main API.
    if name == "Region":
        from repro.regions import Region

        return Region
    if name == "Volume":
        from repro.volumes import Volume

        return Volume
    if name == "DataRegion":
        from repro.volumes import DataRegion

        return DataRegion
    if name == "QbismSystem":
        from repro.core import QbismSystem

        return QbismSystem
    # The module __getattr__ protocol requires AttributeError specifically.
    raise AttributeError(  # qblint: disable=repro-error-subclass
        f"module 'repro' has no attribute {name!r}"
    )
