"""The qblint rule catalog.

Each rule is a small class with a stable ``name`` (used in reports and in
``# qblint: disable=<name>`` suppressions), a one-line ``description``, and
a ``check`` generator yielding ``(line, message)`` pairs for one parsed
module.  New rules plug in by subclassing :class:`Rule` and appending to
``ALL_RULES``.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Iterator

__all__ = [
    "ALL_RULES",
    "Rule",
    "NoRawDeviceIO",
    "ReproErrorSubclass",
    "NoBroadExcept",
    "NoMutableDefault",
    "ConsistentAll",
    "NoDirectIOStatsMutation",
    "PublicDocstring",
]


class Rule:
    """Base class for qblint rules."""

    name: str = ""
    description: str = ""

    def check(self, tree: ast.Module, path: str) -> Iterator[tuple[int, str]]:
        """Yield ``(line, message)`` for each violation in one module."""
        raise NotImplementedError
        yield  # pragma: no cover


def _module_parts(path: str) -> tuple[str, ...]:
    """Path components of a source file, POSIX-normalized."""
    return PurePosixPath(path.replace("\\", "/")).parts


def _in_package(path: str, package: str) -> bool:
    """Is this file inside the given top-level subpackage (e.g. 'storage')?"""
    parts = _module_parts(path)
    for i, part in enumerate(parts[:-1]):
        if part == "repro" and i + 1 < len(parts) and parts[i + 1] == package:
            return True
    return False


class NoRawDeviceIO(Rule):
    """Block-device bytes must flow through the storage layer.

    Outside ``repro/storage/``, code may not touch a device's private
    ``_backing`` buffer nor call ``read``/``write``/``read_ranges`` directly
    on a device object — those paths bypass the Long Field Manager and the
    I/O accounting every benchmark number depends on.
    """

    name = "no-raw-device-io"
    description = (
        "no direct BlockDevice reads/writes outside repro/storage/ "
        "(use the LongFieldManager / PageCache APIs)"
    )

    _DEVICE_NAMES = {"device", "dev", "block_device"}
    _IO_METHODS = {"read", "write", "read_ranges"}

    def _is_device(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self._DEVICE_NAMES
        if isinstance(node, ast.Attribute):
            return node.attr in self._DEVICE_NAMES
        return False

    def check(self, tree: ast.Module, path: str) -> Iterator[tuple[int, str]]:
        """Yield this rule's violations for one parsed module."""
        if _in_package(path, "storage"):
            return
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute) and node.attr == "_backing":
                yield (
                    node.lineno,
                    "direct access to a device's _backing buffer bypasses "
                    "I/O accounting",
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._IO_METHODS
                and self._is_device(node.func.value)
            ):
                yield (
                    node.lineno,
                    f"raw device .{node.func.attr}() call outside the "
                    "storage layer",
                )


class ReproErrorSubclass(Rule):
    """Every exception raised under ``src/repro`` derives from ReproError.

    Raising builtin exception types directly breaks the package contract
    that ``except ReproError`` catches any library failure.  The bridge
    types in :mod:`repro.errors` (ValidationError, UnknownNameError, ...)
    keep builtin-catching callers working.  ``NotImplementedError`` and
    ``AssertionError`` are exempt by convention.
    """

    name = "repro-error-subclass"
    description = (
        "raise repro.errors types, not bare builtins "
        "(except NotImplementedError/AssertionError)"
    )

    _FORBIDDEN = {
        "Exception",
        "BaseException",
        "ValueError",
        "TypeError",
        "KeyError",
        "IndexError",
        "RuntimeError",
        "LookupError",
        "ArithmeticError",
        "ZeroDivisionError",
        "OSError",
        "IOError",
        "AttributeError",
        "StopIteration",
    }

    def check(self, tree: ast.Module, path: str) -> Iterator[tuple[int, str]]:
        """Yield this rule's violations for one parsed module."""
        for node in ast.walk(tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            if isinstance(exc, ast.Name) and exc.id in self._FORBIDDEN:
                yield (
                    node.lineno,
                    f"raise of builtin {exc.id}; use a repro.errors subclass "
                    "so 'except ReproError' catches it",
                )


class NoBroadExcept(Rule):
    """No ``except Exception`` / bare ``except`` handlers.

    The one sanctioned broad handler is the UDF sandbox boundary in
    ``repro/db/functions.py`` (it re-wraps arbitrary user-function failures)
    — that site carries an explicit suppression.
    """

    name = "no-broad-except"
    description = "no bare 'except:' or 'except Exception:' handlers"

    def check(self, tree: ast.Module, path: str) -> Iterator[tuple[int, str]]:
        """Yield this rule's violations for one parsed module."""
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield (node.lineno, "bare 'except:' swallows every failure")
            elif isinstance(node.type, ast.Name) and node.type.id in (
                "Exception",
                "BaseException",
            ):
                yield (
                    node.lineno,
                    f"broad 'except {node.type.id}' hides unrelated bugs; "
                    "catch specific types",
                )


class NoMutableDefault(Rule):
    """No mutable default argument values (the classic shared-state trap)."""

    name = "no-mutable-default"
    description = "no list/dict/set literals (or constructors) as parameter defaults"

    _MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict"}

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in self._MUTABLE_CALLS
        return False

    def check(self, tree: ast.Module, path: str) -> Iterator[tuple[int, str]]:
        """Yield this rule's violations for one parsed module."""
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield (
                        default.lineno,
                        f"mutable default argument in {node.name}(); "
                        "use None and create inside",
                    )


class ConsistentAll(Rule):
    """Public modules declare ``__all__`` and it names only real attributes.

    Private modules (basename starting with ``_``, including ``__main__``)
    are exempt.  Every entry must be a string naming something defined or
    imported at module level — a stale entry breaks ``from m import *`` and
    misleads readers about the public surface.
    """

    name = "consistent-all"
    description = "public modules declare __all__ listing only defined names"

    def _top_level_names(self, tree: ast.Module) -> set[str]:
        names: set[str] = set()

        def collect(statements) -> None:
            for node in statements:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    names.add(node.name)
                elif isinstance(node, ast.Assign):
                    for target in node.targets:
                        for sub in ast.walk(target):
                            if isinstance(sub, ast.Name):
                                names.add(sub.id)
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    if isinstance(node.target, ast.Name):
                        names.add(node.target.id)
                elif isinstance(node, (ast.Import, ast.ImportFrom)):
                    for alias in node.names:
                        bound = alias.asname or alias.name.split(".")[0]
                        names.add(bound)
                elif isinstance(node, ast.If):
                    collect(node.body)
                    collect(node.orelse)
                elif isinstance(node, ast.Try):
                    collect(node.body)
                    for handler in node.handlers:
                        collect(handler.body)
                    collect(node.orelse)
                    collect(node.finalbody)
                elif isinstance(node, (ast.For, ast.While, ast.With)):
                    collect(node.body)
        collect(tree.body)
        return names

    def check(self, tree: ast.Module, path: str) -> Iterator[tuple[int, str]]:
        """Yield this rule's violations for one parsed module."""
        basename = _module_parts(path)[-1]
        if basename.startswith("_") and basename != "__init__.py":
            return
        declaration = None
        for node in tree.body:
            if isinstance(node, ast.Assign):
                targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
                if "__all__" in targets:
                    declaration = node
                    break
        if declaration is None:
            yield (1, "public module does not declare __all__")
            return
        if not isinstance(declaration.value, (ast.List, ast.Tuple)):
            yield (declaration.lineno, "__all__ must be a literal list or tuple")
            return
        defined = self._top_level_names(tree)
        for element in declaration.value.elts:
            if not (isinstance(element, ast.Constant)
                    and isinstance(element.value, str)):
                yield (element.lineno, "__all__ entries must be string literals")
                continue
            if element.value not in defined:
                yield (
                    element.lineno,
                    f"__all__ names {element.value!r} which is not defined "
                    "in the module",
                )


class NoDirectIOStatsMutation(Rule):
    """IOStats counters are written by the storage layer alone.

    The observability layer (and every benchmark) *reads* those counters;
    a stray ``stats.pages_read += ...`` anywhere else would silently skew
    the Table 3/4 numbers.  Outside ``repro/storage/``, assigning or
    augmenting an attribute named after an IOStats field is flagged.
    """

    name = "no-direct-iostats-mutation"
    description = (
        "no writes to IOStats counter attributes outside repro/storage/ "
        "(observability must only read the I/O accounting)"
    )

    _FIELDS = {
        "pages_read", "pages_written",
        "read_extents", "write_extents",
        "bytes_read", "bytes_written",
        "read_calls", "write_calls",
    }

    def _target_field(self, target: ast.expr) -> str | None:
        if isinstance(target, ast.Attribute) and target.attr in self._FIELDS:
            return target.attr
        return None

    def check(self, tree: ast.Module, path: str) -> Iterator[tuple[int, str]]:
        """Yield this rule's violations for one parsed module."""
        if _in_package(path, "storage"):
            return
        for node in ast.walk(tree):
            if isinstance(node, ast.AugAssign):
                targets = [node.target]
            elif isinstance(node, ast.Assign):
                targets = node.targets
            else:
                continue
            for target in targets:
                fld = self._target_field(target)
                if fld is not None:
                    yield (
                        node.lineno,
                        f"mutation of I/O counter {fld!r} outside the "
                        "storage layer skews the paper's accounting",
                    )


class PublicDocstring(Rule):
    """Docstring coverage for the public API surface.

    Every public (non-underscore) class, and every public function or
    method — module-level, or in the body of a public class — inside the
    ``repro`` package must carry a docstring.  The rule is what keeps
    ARCHITECTURE.md honest: a newcomer walking the module map can read
    what each entry point does without leaving the source.

    Property ``setter``/``deleter`` bodies are exempt (the getter's
    docstring covers the attribute), as are nested functions (not API
    surface).  One-off exceptions use the standard suppression comment:
    ``# qblint: disable=public-docstring``.
    """

    name = "public-docstring"
    description = (
        "public classes, functions, and methods in the repro package "
        "need a docstring"
    )

    _EXEMPT_DECORATOR_ATTRS = {"setter", "deleter", "getter"}

    def _is_exempt(self, node: ast.AST) -> bool:
        for decorator in getattr(node, "decorator_list", ()):
            if (isinstance(decorator, ast.Attribute)
                    and decorator.attr in self._EXEMPT_DECORATOR_ATTRS):
                return True
        return False

    def _missing(self, body, kind_prefix: str):
        """Yield violations for one scope's statements (no recursion into
        function bodies: nested defs are not public API)."""
        for node in body:
            if isinstance(node, ast.ClassDef):
                public = not node.name.startswith("_")
                if public and ast.get_docstring(node) is None:
                    yield node.lineno, f"public class {node.name!r} has no docstring"
                if public:
                    yield from self._missing(node.body, f"{node.name}.")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith("_") or self._is_exempt(node):
                    continue
                if ast.get_docstring(node) is None:
                    yield (
                        node.lineno,
                        f"public {'method' if kind_prefix else 'function'} "
                        f"{kind_prefix}{node.name}() has no docstring",
                    )

    def check(self, tree: ast.Module, path: str) -> Iterator[tuple[int, str]]:
        """Flag public defs without docstrings in ``repro`` package files."""
        parts = _module_parts(path)
        if "repro" not in parts[:-1]:
            return
        yield from self._missing(tree.body, "")


#: the registry the engine runs, in report order
ALL_RULES: tuple[Rule, ...] = (
    NoRawDeviceIO(),
    ReproErrorSubclass(),
    NoBroadExcept(),
    NoMutableDefault(),
    ConsistentAll(),
    NoDirectIOStatsMutation(),
    PublicDocstring(),
)
