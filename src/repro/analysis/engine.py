"""The qblint engine: file walking, suppression handling, rule dispatch.

Suppressions are comments:

* ``# qblint: disable=rule-a,rule-b`` — silences those rules on that line
  (or, when the comment stands alone, on the next line);
* ``# qblint: disable-file=rule-a`` — silences a rule for the whole file.

Unknown rule names in a suppression are themselves reported, so stale
suppressions cannot linger silently.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.rules import ALL_RULES, Rule
from repro.errors import ValidationError

__all__ = ["Violation", "Suppressions", "lint_file", "lint_paths",
           "CONCURRENCY_CODES"]

#: diagnostic codes of the interprocedural concurrency pass
#: (:mod:`repro.analysis.concurrency`).  Defined here — not there — so the
#: suppression validator below can accept them without importing the
#: analyzer (which imports this module for Violation/Suppressions).
CONCURRENCY_CODES = frozenset(
    {"QB401", "QB402", "QB411", "QB412", "QB421", "QB422"}
)

_LINE_RE = re.compile(r"#\s*qblint:\s*disable=([\w,\s-]+)")
_FILE_RE = re.compile(r"#\s*qblint:\s*disable-file=([\w,\s-]+)")


@dataclass(frozen=True)
class Violation:
    """One rule violation at one source location."""

    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        """Render as ``path:line: [rule] message``."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class Suppressions:
    """Parsed ``qblint: disable`` comments of one file."""

    def __init__(self, source: str):
        self.by_line: dict[int, set[str]] = {}
        self.whole_file: set[str] = set()
        self.mentioned: set[str] = set()
        # Real COMMENT tokens only — a doc example that merely *mentions*
        # a suppression inside a string must not activate one.
        for token in _comment_tokens(source):
            number = token.start[0]
            text = token.string
            match = _FILE_RE.search(text)
            if match:
                rules = _parse_rule_list(match.group(1))
                self.whole_file |= rules
                self.mentioned |= rules
                continue
            match = _LINE_RE.search(text)
            if match:
                rules = _parse_rule_list(match.group(1))
                self.mentioned |= rules
                self.by_line.setdefault(number, set()).update(rules)
                if token.start[1] == 0 or not token.line[: token.start[1]].strip():
                    # A standalone comment line guards the line below it.
                    self.by_line.setdefault(number + 1, set()).update(rules)

    def active(self, line: int, rule: str) -> bool:
        """Is ``rule`` suppressed on ``line``?"""
        if rule in self.whole_file:
            return True
        return rule in self.by_line.get(line, set())


def _parse_rule_list(text: str) -> set[str]:
    return {part.strip() for part in text.split(",") if part.strip()}


def _comment_tokens(source: str):
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                yield token
    except (tokenize.TokenError, IndentationError):
        return  # unparseable tail; the ast pass reports the syntax error


def lint_file(path: str | Path, rules: Sequence[Rule] = ALL_RULES) -> list[Violation]:
    """All violations in one Python source file."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    display = str(path)
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        return [
            Violation(
                display,
                exc.lineno or 1,
                "syntax-error",
                f"file does not parse: {exc.msg}",
            )
        ]
    suppressions = Suppressions(source)
    known = {rule.name for rule in rules} | CONCURRENCY_CODES
    violations = [
        Violation(display, 1, "unknown-suppression",
                  f"suppression names unknown rule {name!r}")
        for name in sorted(suppressions.mentioned - known)
    ]
    for rule in rules:
        for line, message in rule.check(tree, display):
            if not suppressions.active(line, rule.name):
                violations.append(Violation(display, line, rule.name, message))
    violations.sort(key=lambda v: (v.line, v.rule))
    return violations


def lint_paths(paths: Iterable[str | Path],
               rules: Sequence[Rule] = ALL_RULES) -> list[Violation]:
    """All violations under the given files/directories (recursing into dirs)."""
    files: list[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(sorted(entry.rglob("*.py")))
        elif entry.is_file():
            files.append(entry)
        else:
            raise ValidationError(f"no such file or directory: {entry}")
    violations: list[Violation] = []
    for file in files:
        violations.extend(lint_file(file, rules))
    return violations
