"""``python -m repro.analysis`` — the qblint command-line interface.

``--concurrency`` adds the interprocedural lock-discipline pass
(:mod:`repro.analysis.concurrency`) to the line rules; ``--baseline`` /
``--write-baseline`` tolerate pre-existing debt while a new rule family
rolls out (:mod:`repro.analysis.baseline`).

Exit status: 0 when the tree is clean, 1 when violations were found,
2 on usage errors (bad path, unknown rule name, unreadable baseline).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.engine import lint_paths
from repro.analysis.report import render_json, render_text
from repro.analysis.rules import ALL_RULES
from repro.errors import ValidationError


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: lint the given paths and print violations."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="qblint: static analysis for the QBISM reproduction",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint (default: src/repro)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format")
    parser.add_argument("--rule", action="append", default=None, metavar="NAME",
                        help="run only the named rule (repeatable)")
    parser.add_argument("--concurrency", action="store_true",
                        help="also run the interprocedural concurrency pass "
                             "(QB4xx: lock order, guarded state, txn scope)")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="tolerate violations recorded in this baseline")
    parser.add_argument("--write-baseline", metavar="FILE", default=None,
                        help="snapshot current violations to FILE and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.name}: {rule.description}")
        from repro.analysis.concurrency import CONCURRENCY_CODES

        print("-- concurrency pass (--concurrency) --")
        descriptions = {
            "QB401": "lock acquired against the declared hierarchy order",
            "QB402": "read->write upgrade of the database RWLock",
            "QB411": "guarded attribute mutated without its lock",
            "QB412": "@guarded_by function called without its lock",
            "QB421": "transaction-scoped state touched outside a WAL txn",
            "QB422": "blocking call while an exclusive lock is held",
        }
        for code in sorted(CONCURRENCY_CODES):
            print(f"{code}: {descriptions[code]}")
        return 0

    rules = ALL_RULES
    if args.rule:
        by_name = {rule.name: rule for rule in ALL_RULES}
        unknown = [name for name in args.rule if name not in by_name]
        if unknown:
            print(f"unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
        rules = tuple(by_name[name] for name in args.rule)

    try:
        violations = lint_paths(args.paths, rules)
        if args.concurrency:
            from repro.analysis.concurrency import analyze_paths

            violations = sorted(
                violations + analyze_paths(args.paths),
                key=lambda v: (v.path, v.line, v.rule),
            )
        if args.write_baseline:
            count = write_baseline(args.write_baseline, violations)
            print(f"wrote {count} baseline entries to {args.write_baseline}")
            return 0
        if args.baseline:
            violations = apply_baseline(violations, load_baseline(args.baseline))
    except ValidationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    renderer = render_json if args.format == "json" else render_text
    print(renderer(violations))
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
