"""``python -m repro.analysis`` — the qblint command-line interface.

Exit status: 0 when the tree is clean, 1 when violations were found,
2 on usage errors (bad path, unknown rule name).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.engine import lint_paths
from repro.analysis.report import render_json, render_text
from repro.analysis.rules import ALL_RULES
from repro.errors import ValidationError


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: lint the given paths and print violations."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="qblint: static analysis for the QBISM reproduction",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint (default: src/repro)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format")
    parser.add_argument("--rule", action="append", default=None, metavar="NAME",
                        help="run only the named rule (repeatable)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.name}: {rule.description}")
        return 0

    rules = ALL_RULES
    if args.rule:
        by_name = {rule.name: rule for rule in ALL_RULES}
        unknown = [name for name in args.rule if name not in by_name]
        if unknown:
            print(f"unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
        rules = tuple(by_name[name] for name in args.rule)

    try:
        violations = lint_paths(args.paths, rules)
    except ValidationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    renderer = render_json if args.format == "json" else render_text
    print(renderer(violations))
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
