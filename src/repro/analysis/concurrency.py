"""Interprocedural concurrency checks: lock order, guards, txn scope.

qblint's line rules (:mod:`repro.analysis.rules`) look at one statement
at a time; the checks here reason about *lock context* flowing through
the call graph (:mod:`repro.analysis.callgraph`).  Three families, all
with stable ``QB4xx`` codes (suppressible like any other rule):

**Lock ordering** — the runtime hierarchy, outermost first::

    db.rwlock (10) -> txn (20) -> db.version (25) -> cache.latch (30)
                   -> cache.lock (40) -> wal.stats (50)
                   -> db.stats (55) -> db.index (56)
                   -> leaf mutexes (1000)

``db.rwlock`` is the database's statement-level RWLock; ``txn`` is the
WAL transaction scope (the ``wal.txn`` RLock *and* every
``X.transaction()`` context manager — statically they are one region);
``db.version`` is the MVCC version-manager mutex (writers publish under
``db.rwlock`` and ``txn``; readers pin/unpin with nothing held above
it); every other private mutex (``*lock`` / ``*latch`` attributes) is a
*leaf*: it may be taken while anything above it is held, but nothing
ranked may be acquired under it.  Violations:

* ``QB401`` — a lock acquired (directly, or transitively through a
  resolved call) while a lock ranked *below* it is held, or a
  non-reentrant lock re-acquired by its holder;
* ``QB402`` — the write side of ``db.rwlock`` acquired while its read
  side is held (the RWLock refuses upgrades at runtime; the static pass
  catches the attempt before a stress run does).

**Guarded state** — ``# guarded_by: <lock-attr>`` comments on attribute
assignments declare which lock protects a shared mutable, and
``@guarded_by("txn")`` declares a function's contract.  Mutations of a
guarded attribute (assignment, ``+=``, ``del``, or a mutating method
call like ``.append``/``.pop``/``.add_write``) outside the guard are
``QB411``; calling a ``@guarded_by`` function without its guard held is
``QB412``.  Constructors are exempt (the object is not shared yet), as
are nested ``def``s (rollback callbacks run under the WAL's own
discipline).

**Transaction scope** — the guard pseudo-key ``"txn"`` ties state to the
WAL transaction: mutating txn-guarded state (the LFM field table, the
WAL's dirty-page buffer) outside a transaction scope is ``QB421``, and a
potentially *blocking* call (pool submit, queue put/get, thread join,
``Future.result``, ``time.sleep``) while ``txn`` or the write side of
``db.rwlock`` is held is ``QB422`` — a writer stalled on the admission
queue would stall every reader behind it.

Held-context propagation is a least fixpoint: a function's *entry* set
is the intersection of what every resolved call site guarantees, so a
helper only "inherits" a lock all its callers hold.  Acquisition sets
(``may_acquire``) propagate as unions.  Unresolvable calls are opaque —
the runtime lockdep witness (:mod:`repro.concurrency.lockdep`) covers
what static resolution cannot see.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.analysis.callgraph import CodeIndex, FunctionInfo, build_index
from repro.analysis.engine import CONCURRENCY_CODES, Suppressions, Violation
from repro.errors import ValidationError

__all__ = ["analyze_paths", "RANKS", "LEAF_RANK", "CONCURRENCY_CODES"]

#: declared ranks of the named hierarchy locks (lower = acquired first)
RANKS = {
    "cluster.router": 5,
    "cluster.link": 8,
    "cluster.replica": 9,
    "db.rwlock": 10,
    "txn": 20,
    "db.version": 25,
    "cache.latch": 30,
    "cache.lock": 40,
    "wal.stats": 50,
    "db.stats": 55,
    "db.index": 56,
    "obs.digest": 60,
    "obs.slo": 62,
}

#: every unranked (leaf) mutex sits below the whole hierarchy
LEAF_RANK = 1000

#: keys a holder may re-acquire (RWLock and the WAL's RLock re-enter)
REENTRANT = {"db.rwlock", "txn"}

#: (class, attribute) -> hierarchy key, for locks whose attr name alone
#: is ambiguous (every other ``*lock``/``*latch`` attr becomes a leaf)
LOCK_ATTRS = {
    ("ShardRouter", "_lock"): "cluster.router",
    ("ReplicaLink", "_lock"): "cluster.link",
    ("Replica", "_lock"): "cluster.replica",
    ("PageCache", "_lock"): "cache.lock",
    ("WriteAheadLog", "_txn_lock"): "txn",
    ("WriteAheadLog", "_stats_lock"): "wal.stats",
    ("TableStats", "_lock"): "db.stats",
    ("SpatialIndex", "_lock"): "db.index",
    ("VersionManager", "_lock"): "db.version",
    ("DigestTable", "_lock"): "obs.digest",
    ("SloEngine", "_lock"): "obs.slo",
    # Condition variables (leaf rank; named so `with self._cond:` scopes
    # register as holding the guard for the state they protect)
    ("WriteAheadLog", "_commit_cond"): "WriteAheadLog._commit_cond",
    ("WorkerPool", "_cond"): "WorkerPool._cond",
}

#: bare with-target names with a known key (the per-page fill latch)
NAME_KEYS = {"latch": "cache.latch"}

#: receiver names that mark ``.read()`` / ``.write()`` as RWLock sides
RWLOCK_NAMES = {"rwlock", "_rwlock"}

#: method calls that mutate their receiver (for guarded-attr checks)
MUTATORS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard", "move_to_end",
    "add_read", "add_write",
}

_HIERARCHY_DOC = ("cluster.router -> cluster.link -> cluster.replica -> "
                  "db.rwlock -> txn -> db.version -> cache.latch -> "
                  "cache.lock -> wal.stats -> db.stats -> db.index -> "
                  "obs.digest -> obs.slo -> leaf mutexes")

_GUARD_RE = re.compile(r"guarded_by:\s*([A-Za-z_]\w*)")


def _rank(key: str) -> int:
    return RANKS.get(key, LEAF_RANK)


# --------------------------------------------------------------------- #
# walk records
# --------------------------------------------------------------------- #


@dataclass
class _Acquire:
    fn: str
    key: str
    mode: str           #: "read" | "write" | "excl" | "dynamic"
    line: int
    lex_held: dict[str, str]


@dataclass
class _CallSite:
    fn: str
    callees: frozenset[str]
    line: int
    lex_held: dict[str, str]
    blocking: str | None = None   #: reason text for a blocking primitive


@dataclass
class _Mutation:
    fn: str
    attr: str
    guard: str
    line: int
    lex_held: dict[str, str]


def _merge_mode(a: str, b: str) -> str:
    if a == b:
        return a
    return "dynamic"


def _merge_held(entry: dict[str, str], lex: dict[str, str]) -> dict[str, str]:
    """Entry context overlaid with the lexical with-stack (lexical wins)."""
    held = dict(entry)
    held.update(lex)
    return held


class _Analyzer:
    """One analysis run over a set of parsed files."""

    def __init__(self, files: list[tuple[Path, str, ast.Module]]):
        self.files = files
        self.index: CodeIndex = build_index([(p, t) for p, _, t in files])
        #: (class, attr) -> guard key, from ``# guarded_by:`` comments
        self.guards: dict[tuple[str, str], str] = {}
        #: qualname -> declared guard keys, from ``@guarded_by(...)``
        self.declared: dict[str, set[str]] = {}
        self.acquires: list[_Acquire] = []
        self.calls: list[_CallSite] = []
        self.mutations: list[_Mutation] = []
        self.entry: dict[str, dict[str, str]] = {}
        self.may_acquire: dict[str, set[str]] = {}
        self.blocks: set[str] = set()

    # ------------------------------------------------------------------ #
    # guard annotations
    # ------------------------------------------------------------------ #

    def collect_guards(self) -> None:
        for path, source, tree in self.files:
            comment_guards = _guard_comment_lines(source)
            if not comment_guards:
                continue
            for node in ast.walk(tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                for stmt in ast.walk(node):
                    target = _self_assign_target(stmt)
                    if target is None:
                        continue
                    guard = comment_guards.get(stmt.lineno)
                    if guard is None:
                        continue
                    self.guards[(node.name, target)] = \
                        self._guard_key(node.name, guard)

    def _guard_key(self, cls: str, guard: str) -> str:
        """A guard name from an annotation to its hierarchy key."""
        if guard == "txn" or guard in RANKS:
            # A hierarchy key used verbatim ("db.rwlock", "db.version")
            # names the ranked lock itself, not a per-class attribute.
            return guard
        return LOCK_ATTRS.get((cls, guard), f"{cls}.{guard}")

    def _declared_guards(self, fn: FunctionInfo) -> set[str]:
        out: set[str] = set()
        for deco in fn.node.decorator_list:
            if not (isinstance(deco, ast.Call) and _deco_name(deco.func) == "guarded_by"):
                continue
            for arg in deco.args:
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    out.add(self._guard_key(fn.cls or "", arg.value))
        return out

    # ------------------------------------------------------------------ #
    # lock-expression classification
    # ------------------------------------------------------------------ #

    def _classify_lock(self, fn: FunctionInfo, expr: ast.expr,
                       locals_locks: dict[str, tuple[str, str]]
                       ) -> tuple[str, str] | None:
        """(key, mode) a with-item acquires, or ``None`` for non-locks."""
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
            method, receiver = expr.func.attr, expr.func.value
            if method in ("read", "write") and _is_rwlock(receiver):
                return ("db.rwlock", method)
            if method == "transaction":
                return ("txn", "excl")
            return None
        if isinstance(expr, ast.Name):
            if expr.id in locals_locks:
                return locals_locks[expr.id]
            key = NAME_KEYS.get(expr.id)
            return (key, "excl") if key else None
        if isinstance(expr, ast.Attribute) and \
                isinstance(expr.value, ast.Name) and expr.value.id == "self":
            key = self._attr_lock_key(fn.cls, expr.attr)
            return (key, "excl") if key else None
        if isinstance(expr, ast.IfExp):
            body = self._classify_lock(fn, expr.body, locals_locks)
            orelse = self._classify_lock(fn, expr.orelse, locals_locks)
            if body and orelse and body[0] == orelse[0]:
                return (body[0], _merge_mode(body[1], orelse[1]))
            return body or orelse
        return None

    def _attr_lock_key(self, cls: str | None, attr: str) -> str | None:
        if cls is None:
            return None
        override = LOCK_ATTRS.get((cls, attr))
        if override is not None:
            return override
        if attr.endswith(("lock", "latch")):
            return f"{cls}.{attr}"
        return None

    def _prescan_locals(self, fn: FunctionInfo) -> dict[str, tuple[str, str]]:
        """Locals assigned a lock expression (``lock = a.read() if ...``)."""
        out: dict[str, tuple[str, str]] = {}
        for stmt in ast.walk(fn.node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                    isinstance(stmt.targets[0], ast.Name):
                lock = self._classify_lock(fn, stmt.value, out)
                if lock is not None:
                    out[stmt.targets[0].id] = lock
        return out

    # ------------------------------------------------------------------ #
    # function body walk
    # ------------------------------------------------------------------ #

    def walk_all(self) -> None:
        for fn in self.index.functions.values():
            self.declared[fn.qualname] = self._declared_guards(fn)
            locals_locks = self._prescan_locals(fn)
            self._walk_block(fn, fn.node.body, {}, locals_locks)

    def _walk_block(self, fn: FunctionInfo, stmts: Iterable[ast.stmt],
                    held: dict[str, str],
                    locals_locks: dict[str, tuple[str, str]]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested scopes run under their own discipline
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = dict(held)
                for item in stmt.items:
                    self._visit_exprs(fn, item.context_expr, inner)
                    lock = self._classify_lock(fn, item.context_expr,
                                               locals_locks)
                    if lock is not None:
                        key, mode = lock
                        self.acquires.append(_Acquire(
                            fn.qualname, key, mode, item.context_expr.lineno,
                            dict(inner)))
                        if key not in inner:
                            inner[key] = mode
                self._walk_block(fn, stmt.body, inner, locals_locks)
            elif isinstance(stmt, ast.If):
                self._visit_exprs(fn, stmt.test, held)
                self._walk_block(fn, stmt.body, dict(held), locals_locks)
                self._walk_block(fn, stmt.orelse, dict(held), locals_locks)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._visit_exprs(fn, stmt.iter, held)
                self._walk_block(fn, stmt.body, dict(held), locals_locks)
                self._walk_block(fn, stmt.orelse, dict(held), locals_locks)
            elif isinstance(stmt, ast.While):
                self._visit_exprs(fn, stmt.test, held)
                self._walk_block(fn, stmt.body, dict(held), locals_locks)
                self._walk_block(fn, stmt.orelse, dict(held), locals_locks)
            elif isinstance(stmt, ast.Try) or stmt.__class__.__name__ == "TryStar":
                self._walk_block(fn, stmt.body, dict(held), locals_locks)
                for handler in stmt.handlers:
                    self._walk_block(fn, handler.body, dict(held), locals_locks)
                self._walk_block(fn, stmt.orelse, dict(held), locals_locks)
                self._walk_block(fn, stmt.finalbody, dict(held), locals_locks)
            else:
                self._record_mutations(fn, stmt, held)
                self._visit_exprs(fn, stmt, held)

    def _record_mutations(self, fn: FunctionInfo, stmt: ast.stmt,
                          held: dict[str, str]) -> None:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        for target in targets:
            for attr in _self_attrs(target):
                self._note_mutation(fn, attr, stmt.lineno, held)

    def _note_mutation(self, fn: FunctionInfo, attr: str, line: int,
                       held: dict[str, str]) -> None:
        if fn.cls is None or fn.is_init:
            return
        guard = self.guards.get((fn.cls, attr))
        if guard is not None:
            self.mutations.append(_Mutation(fn.qualname, attr, guard, line,
                                            dict(held)))

    def _visit_exprs(self, fn: FunctionInfo, node: ast.AST,
                     held: dict[str, str]) -> None:
        """Record calls (and mutator calls) in an expression tree."""
        stack: list[ast.AST] = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.Lambda, ast.ClassDef)):
                continue
            stack.extend(ast.iter_child_nodes(current))
            if not isinstance(current, ast.Call):
                continue
            func = current.func
            if isinstance(func, ast.Attribute):
                receiver = func.value
                if func.attr in MUTATORS and isinstance(receiver, ast.Attribute) \
                        and isinstance(receiver.value, ast.Name) \
                        and receiver.value.id == "self":
                    self._note_mutation(fn, receiver.attr, current.lineno, held)
            callees = self.index.resolve_call(fn, current)
            blocking = _blocking_reason(current)
            if callees or blocking:
                self.calls.append(_CallSite(fn.qualname, frozenset(callees),
                                            current.lineno, dict(held),
                                            blocking))

    # ------------------------------------------------------------------ #
    # fixpoints
    # ------------------------------------------------------------------ #

    def solve(self) -> None:
        callers: dict[str, list[_CallSite]] = {}
        for site in self.calls:
            for callee in site.callees:
                callers.setdefault(callee, []).append(site)
        names = list(self.index.functions)
        self.entry = {name: {g: "excl" for g in self.declared.get(name, ())}
                      for name in names}
        # Entry contexts: least fixpoint of "intersection over call sites".
        for _ in range(20):
            changed = False
            for name in names:
                sites = callers.get(name)
                new = {g: "excl" for g in self.declared.get(name, ())}
                if sites:
                    merged = None
                    for site in sites:
                        held = _merge_held(self.entry.get(site.fn, {}),
                                           site.lex_held)
                        if merged is None:
                            merged = dict(held)
                        else:
                            merged = {
                                k: _merge_mode(merged[k], held[k])
                                for k in merged.keys() & held.keys()
                            }
                    for key, mode in (merged or {}).items():
                        new.setdefault(key, mode)
                if new != self.entry[name]:
                    self.entry[name] = new
                    changed = True
            if not changed:
                break
        # May-acquire sets and blocking-ness: unions over callees.
        local_acq: dict[str, set[str]] = {}
        for acq in self.acquires:
            local_acq.setdefault(acq.fn, set()).add(acq.key)
        self.may_acquire = {name: set(local_acq.get(name, ())) for name in names}
        self.blocks = {site.fn for site in self.calls if site.blocking}
        for _ in range(30):
            changed = False
            for site in self.calls:
                acq = self.may_acquire.setdefault(site.fn, set())
                for callee in site.callees:
                    extra = self.may_acquire.get(callee, set()) - acq
                    if extra:
                        acq |= extra
                        changed = True
                    if callee in self.blocks and site.fn not in self.blocks:
                        self.blocks.add(site.fn)
                        changed = True
            if not changed:
                break

    # ------------------------------------------------------------------ #
    # checks
    # ------------------------------------------------------------------ #

    def check(self) -> list[Violation]:
        locate = {fn.qualname: fn.path for fn in self.index.functions.values()}
        out: list[Violation] = []
        seen: set[tuple] = set()

        def emit(fn: str, line: int, code: str, message: str) -> None:
            mark = (locate[fn], line, code)
            if mark not in seen:
                seen.add(mark)
                out.append(Violation(locate[fn], line, code, message))

        for acq in self.acquires:
            held = _merge_held(self.entry.get(acq.fn, {}), acq.lex_held)
            if acq.key in held:
                if acq.key == "db.rwlock" and acq.mode == "write" \
                        and held[acq.key] == "read":
                    emit(acq.fn, acq.line, "QB402",
                         "read->write upgrade: the write side of 'db.rwlock' "
                         "is acquired while this thread holds the read side "
                         "(RWLock refuses upgrades at runtime)")
                elif acq.key not in REENTRANT:
                    emit(acq.fn, acq.line, "QB401",
                         f"non-reentrant lock '{acq.key}' is re-acquired "
                         f"while already held by this thread")
                continue
            for other in acq.lex_held.keys() | self.entry.get(acq.fn, {}).keys():
                if other != acq.key and _rank(acq.key) < _rank(other):
                    emit(acq.fn, acq.line, "QB401",
                         f"'{acq.key}' is acquired while '{other}' is held, "
                         f"against the declared order ({_HIERARCHY_DOC})")

        for site in self.calls:
            held = _merge_held(self.entry.get(site.fn, {}), site.lex_held)
            for callee in sorted(site.callees):
                for guard in sorted(self.declared.get(callee, ())):
                    if guard not in held:
                        code = "QB421" if guard == "txn" else "QB412"
                        need = ("an open WAL transaction scope"
                                if guard == "txn" else f"'{guard}' held")
                        emit(site.fn, site.line, code,
                             f"{_short(callee)} is @guarded_by({guard!r}) "
                             f"but is called here without {need}")
                for key in sorted(self.may_acquire.get(callee, ()) - held.keys()):
                    for other in held:
                        if _rank(key) < _rank(other):
                            emit(site.fn, site.line, "QB401",
                                 f"call to {_short(callee)} may acquire "
                                 f"'{key}' while '{other}' is held, against "
                                 f"the declared order ({_HIERARCHY_DOC})")
            blocking = site.blocking or next(
                (f"call to {_short(c)}" for c in sorted(site.callees)
                 if c in self.blocks), None)
            if blocking:
                for key, mode in held.items():
                    if key == "txn" or (key == "db.rwlock" and mode == "write"):
                        emit(site.fn, site.line, "QB422",
                             f"potentially blocking {blocking} while "
                             f"exclusive '{key}' is held")
                        break

        for mut in self.mutations:
            held = _merge_held(self.entry.get(mut.fn, {}), mut.lex_held)
            if mut.guard not in held:
                if mut.guard == "txn":
                    emit(mut.fn, mut.line, "QB421",
                         f"'{mut.attr}' is transaction-scoped state "
                         f"(guarded_by: txn) but is mutated here outside any "
                         f"WAL transaction scope")
                else:
                    emit(mut.fn, mut.line, "QB411",
                         f"'{mut.attr}' is guarded by '{mut.guard}' but is "
                         f"mutated here without it held")
        return out


# --------------------------------------------------------------------- #
# small syntactic helpers
# --------------------------------------------------------------------- #


def _is_rwlock(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in RWLOCK_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in RWLOCK_NAMES
    return False


def _deco_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _self_assign_target(stmt: ast.AST) -> str | None:
    """``self.X`` for an annotated assignment statement, else ``None``."""
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
    elif isinstance(stmt, ast.AnnAssign):
        target = stmt.target
    else:
        return None
    if isinstance(target, ast.Attribute) and \
            isinstance(target.value, ast.Name) and target.value.id == "self":
        return target.attr
    return None


def _self_attrs(target: ast.expr):
    """Attributes of ``self`` a store/delete target mutates."""
    if isinstance(target, ast.Attribute):
        value = target.value
        if isinstance(value, ast.Name) and value.id == "self":
            yield target.attr
        elif isinstance(value, ast.Attribute) and \
                isinstance(value.value, ast.Name) and value.value.id == "self":
            # ``self.x.y = ...`` mutates the object held in ``self.x``.
            yield value.attr
    elif isinstance(target, ast.Subscript):
        yield from _self_attrs(target.value)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _self_attrs(element)
    elif isinstance(target, ast.Starred):
        yield from _self_attrs(target.value)


def _mentions(node: ast.expr, word: str) -> bool:
    if isinstance(node, ast.Name):
        return word in node.id.lower()
    if isinstance(node, ast.Attribute):
        return word in node.attr.lower()
    return False


def _blocking_reason(call: ast.Call) -> str | None:
    """Reason text when a call is a known blocking primitive."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    receiver, method = func.value, func.attr
    if method == "sleep" and isinstance(receiver, ast.Name) \
            and receiver.id == "time":
        return "time.sleep()"
    if method == "join" and _mentions(receiver, "thread"):
        return "thread join"
    if method == "result" and not isinstance(receiver, ast.Constant):
        return "Future.result() wait"
    if method in ("put", "get") and _mentions(receiver, "queue"):
        return f"queue .{method}()"
    return None


def _short(qualname: str) -> str:
    return qualname.split(":", 1)[-1]


def _guard_comment_lines(source: str) -> dict[int, str]:
    """Line -> guard name for every ``# guarded_by:`` comment."""
    import io
    import tokenize

    out: dict[int, str] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                match = _GUARD_RE.search(token.string)
                if match:
                    out[token.start[0]] = match.group(1)
    except (tokenize.TokenError, IndentationError):
        pass
    return out


# --------------------------------------------------------------------- #
# entry point
# --------------------------------------------------------------------- #


def analyze_paths(paths: Iterable[str | Path]) -> list[Violation]:
    """Run the interprocedural concurrency checks over files/directories.

    The whole path set is indexed as one program (the call graph crosses
    files), then each diagnostic lands on its own file and line.  Per-line
    and whole-file ``# qblint: disable=`` suppressions apply, same as for
    the line rules.
    """
    files: list[tuple[Path, str, ast.Module]] = []
    file_list: list[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            file_list.extend(sorted(entry.rglob("*.py")))
        elif entry.is_file():
            file_list.append(entry)
        else:
            raise ValidationError(f"no such file or directory: {entry}")
    for path in file_list:
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            continue  # the line-rule pass reports the syntax error
        files.append((path, source, tree))
    analyzer = _Analyzer(files)
    analyzer.collect_guards()
    analyzer.walk_all()
    analyzer.solve()
    violations = analyzer.check()
    suppressions = {str(p): Suppressions(src) for p, src, _ in files}
    kept = [
        v for v in violations
        if not suppressions[v.path].active(v.line, v.rule)
    ]
    kept.sort(key=lambda v: (v.path, v.line, v.rule))
    return kept
