"""Reporters turning qblint violations into terminal text or JSON."""

from __future__ import annotations

import json
from typing import Sequence

from repro.analysis.engine import Violation

__all__ = ["render_text", "render_json"]


def render_text(violations: Sequence[Violation]) -> str:
    """One ``path:line: [rule] message`` line per violation, plus a summary."""
    lines = [v.format() for v in violations]
    if violations:
        lines.append(f"{len(violations)} violation(s) found")
    else:
        lines.append("qblint: clean")
    return "\n".join(lines)


def render_json(violations: Sequence[Violation]) -> str:
    """A machine-readable report (stable keys, sorted input order)."""
    payload = {
        "violations": [
            {
                "path": v.path,
                "line": v.line,
                "rule": v.rule,
                "message": v.message,
            }
            for v in violations
        ],
        "count": len(violations),
    }
    return json.dumps(payload, indent=2)
