"""A static call graph over the repro source tree.

The concurrency checker (:mod:`repro.analysis.concurrency`) is
*interprocedural*: whether ``PageCache._record_hit`` may touch the LRU
map depends on what its callers hold, not on anything in its own body.
This module supplies the structural half of that analysis:

* :class:`CodeIndex` — every module, class, and function under the
  linted paths, plus the light type facts the resolver needs:
  ``self.x = ClassName(...)`` attribute assignments, annotated
  parameters and dataclass fields (including ``T | None`` unions and
  string annotations), and ``x = ClassName(...)`` locals;
* :meth:`CodeIndex.resolve_call` — the set of function *qualnames* one
  ``ast.Call`` may reach: ``self.method(...)``, ``module.func(...)``,
  ``self.attr.method(...)`` through the inferred attribute types,
  ``Class.static(...)``, and plain same-module / imported names.

Resolution is deliberately partial: an unresolvable call returns the
empty set and the checker treats it as opaque.  Precision errs toward
*under*-resolution — a missed edge can hide a bug from the static pass
(the runtime lockdep witness still sees it), while an invented edge
would produce false diagnostics that teach people to suppress them.

Functions are named ``module:Class.method`` / ``module:func``;
nested ``def``s (closures, rollback callbacks) are not indexed — they
run under their scheduler's discipline, not their definition site's.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["CodeIndex", "ClassInfo", "FunctionInfo", "build_index", "module_name_for"]


@dataclass
class FunctionInfo:
    """One indexed function or method."""

    qualname: str            #: ``module:Class.method`` or ``module:func``
    module: str
    cls: str | None          #: bare class name for methods
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    path: str
    param_types: dict[str, set[str]] = field(default_factory=dict)
    local_types: dict[str, set[str]] = field(default_factory=dict)

    @property
    def is_init(self) -> bool:
        """Is this a constructor (exempt from guard checks)?"""
        return self.cls is not None and self.name == "__init__"


@dataclass
class ClassInfo:
    """One indexed class: its methods and declared bases (bare names)."""

    name: str
    module: str
    methods: dict[str, str] = field(default_factory=dict)  #: name -> qualname
    bases: list[str] = field(default_factory=list)


def module_name_for(path: Path) -> str:
    """Dotted module name for a source path (anchored at a ``repro`` dir).

    Falls back to the file stem for paths outside any package — enough
    for the test fixtures the analyzer is pointed at directly.
    """
    parts = list(path.with_suffix("").parts)
    for anchor in ("repro",):
        if anchor in parts:
            parts = parts[parts.index(anchor):]
            break
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or path.stem


def _base_name(node: ast.expr) -> str | None:
    """Bare name of a base-class expression (``Attribute`` keeps the tail)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class CodeIndex:
    """Modules, classes, functions, and type facts of one source tree."""

    def __init__(self) -> None:
        self.modules: set[str] = set()
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.module_funcs: dict[tuple[str, str], str] = {}
        #: per-module import map: local name -> ("module", dotted) or
        #: ("symbol", bare-name)
        self.imports: dict[str, dict[str, tuple[str, str]]] = {}
        #: class -> attr -> possible classes of the stored value
        self.attr_types: dict[str, dict[str, set[str]]] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def add_module(self, path: Path, tree: ast.Module) -> None:
        """Index one parsed module (first pass: declarations only)."""
        module = module_name_for(path)
        self.modules.add(module)
        imports = self.imports.setdefault(module, {})
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    imports[local] = ("from", f"{node.module}.{alias.name}")
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    imports[local] = ("module", alias.name)
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, None, node, path)
            elif isinstance(node, ast.ClassDef):
                info = ClassInfo(name=node.name, module=module)
                info.bases = [b for b in map(_base_name, node.bases) if b]
                self.classes[node.name] = info
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        fn = self._add_function(module, node.name, item, path)
                        info.methods[item.name] = fn.qualname
                    elif isinstance(item, ast.AnnAssign) and \
                            isinstance(item.target, ast.Name):
                        # Dataclass-style field annotation.
                        types = self._annotation_types(item.annotation)
                        if types:
                            self.attr_types.setdefault(node.name, {}) \
                                .setdefault(item.target.id, set()).update(types)

    def finalize(self) -> None:
        """Second pass: infer attribute/local types (needs every class known)."""
        for fn in self.functions.values():
            self._infer_types(fn)

    def _add_function(self, module: str, cls: str | None,
                      node: ast.FunctionDef | ast.AsyncFunctionDef,
                      path: Path) -> FunctionInfo:
        qualname = f"{module}:{cls}.{node.name}" if cls else f"{module}:{node.name}"
        fn = FunctionInfo(qualname=qualname, module=module, cls=cls,
                          name=node.name, node=node, path=str(path))
        self.functions[qualname] = fn
        if cls is None:
            self.module_funcs[(module, node.name)] = qualname
        return fn

    # ------------------------------------------------------------------ #
    # type facts
    # ------------------------------------------------------------------ #

    def _annotation_types(self, node: ast.expr | None) -> set[str]:
        """Class names an annotation may denote (unions and strings walked)."""
        out: set[str] = set()
        if node is None:
            return out
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return out
        for part in ast.walk(node):
            if isinstance(part, ast.Name) and part.id in self.classes:
                out.add(part.id)
        return out

    def _infer_types(self, fn: FunctionInfo) -> None:
        args = fn.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            types = self._annotation_types(arg.annotation)
            if types:
                fn.param_types[arg.arg] = types
        for stmt in ast.walk(fn.node):
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            value_types = self._value_types(fn, stmt.value)
            if not value_types:
                continue
            if isinstance(target, ast.Name):
                fn.local_types.setdefault(target.id, set()).update(value_types)
            elif fn.cls and isinstance(target, ast.Attribute) and \
                    isinstance(target.value, ast.Name) and target.value.id == "self":
                self.attr_types.setdefault(fn.cls, {}) \
                    .setdefault(target.attr, set()).update(value_types)

    def _value_types(self, fn: FunctionInfo, value: ast.expr) -> set[str]:
        """Classes a right-hand side may construct or pass through."""
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            name = self._resolve_name(fn.module, value.func.id)
            if name in self.classes:
                return {name}
        if isinstance(value, ast.Name):
            return set(fn.param_types.get(value.id, ()))
        if isinstance(value, ast.IfExp):
            return self._value_types(fn, value.body) | \
                self._value_types(fn, value.orelse)
        return set()

    def _resolve_name(self, module: str, name: str) -> str | None:
        """A bare name to its global meaning (class or symbol name)."""
        if name in self.classes and self.classes[name].module == module:
            return name
        target = self.imports.get(module, {}).get(name)
        if target is not None:
            kind, dotted = target
            tail = dotted.rsplit(".", 1)[-1]
            if kind == "from" and dotted not in self.modules:
                return tail  # an imported symbol, not a module
        if name in self.classes:
            return name
        return None

    # ------------------------------------------------------------------ #
    # resolution
    # ------------------------------------------------------------------ #

    def expr_types(self, fn: FunctionInfo, node: ast.expr) -> set[str]:
        """Possible classes of an expression's value (best effort)."""
        if isinstance(node, ast.Name):
            if node.id == "self" and fn.cls:
                return {fn.cls}
            out = set(fn.local_types.get(node.id, ()))
            out |= fn.param_types.get(node.id, set())
            return out
        if isinstance(node, ast.Attribute):
            out: set[str] = set()
            for cls in self.expr_types(fn, node.value):
                for owner in self._mro(cls):
                    out |= self.attr_types.get(owner, {}).get(node.attr, set())
            return out
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            name = self._resolve_name(fn.module, node.func.id)
            if name in self.classes:
                return {name}
        return set()

    def _mro(self, cls: str) -> list[str]:
        """The class plus its indexed bases, nearest first (cycle-safe)."""
        order, queue = [], [cls]
        while queue:
            current = queue.pop(0)
            if current in order or current not in self.classes:
                continue
            order.append(current)
            queue.extend(self.classes[current].bases)
        return order

    def _method(self, cls: str, name: str) -> str | None:
        for owner in self._mro(cls):
            qualname = self.classes[owner].methods.get(name)
            if qualname is not None:
                return qualname
        return None

    def resolve_call(self, fn: FunctionInfo, call: ast.Call) -> set[str]:
        """Qualnames an ``ast.Call`` inside ``fn`` may invoke (maybe empty)."""
        func = call.func
        out: set[str] = set()
        if isinstance(func, ast.Name):
            qualname = self.module_funcs.get((fn.module, func.id))
            if qualname is not None:
                return {qualname}
            name = self._resolve_name(fn.module, func.id)
            if name in self.classes:
                init = self._method(name, "__init__")
                return {init} if init else set()
            if name is not None:
                for (_, fname), qualname in self.module_funcs.items():
                    if fname == name:
                        out.add(qualname)
            return out
        if not isinstance(func, ast.Attribute):
            return out
        receiver, method = func.value, func.attr
        # module.func(...) through an import
        if isinstance(receiver, ast.Name):
            target = self.imports.get(fn.module, {}).get(receiver.id)
            if target is not None:
                kind, dotted = target
                if dotted in self.modules:
                    qualname = self.module_funcs.get((dotted, method))
                    if qualname is not None:
                        return {qualname}
            # Class.staticmethod(...) on a class object
            name = self._resolve_name(fn.module, receiver.id)
            if name in self.classes:
                qualname = self._method(name, method)
                if qualname is not None:
                    return {qualname}
        for cls in self.expr_types(fn, receiver):
            qualname = self._method(cls, method)
            if qualname is not None:
                out.add(qualname)
        return out


def build_index(files: list[tuple[Path, ast.Module]]) -> CodeIndex:
    """Index a set of parsed modules and run type inference."""
    index = CodeIndex()
    for path, tree in files:
        index.add_module(path, tree)
    index.finalize()
    return index
