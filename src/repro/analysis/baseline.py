"""Violation baselines: adopt a rule family without a flag day.

A baseline is a JSON snapshot of the violations a tree currently has.
Landing a new rule (or a whole family, like the ``QB4xx`` concurrency
diagnostics) on an old tree then takes two steps instead of one giant
cleanup commit::

    python -m repro.analysis --concurrency --write-baseline qblint-baseline.json
    python -m repro.analysis --concurrency --baseline qblint-baseline.json

The second form reports only violations *not* in the snapshot: existing
debt is tolerated, new debt fails the build.  Entries match on
``(path, rule, message)`` — deliberately not the line number, so pure
line drift (an edit above a tolerated violation) does not resurrect it;
editing the offending line itself usually changes the message or removes
the violation, surfacing it again either way.

The file format is versioned, sorted, and newline-terminated so diffs of
a committed baseline review like any other source change — shrinking is
progress, growth is visible.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.engine import Violation
from repro.errors import ValidationError

__all__ = ["write_baseline", "apply_baseline", "load_baseline"]

_VERSION = 1


def _key(violation: Violation) -> tuple[str, str, str]:
    return (violation.path, violation.rule, violation.message)


def write_baseline(path: str | Path, violations: list[Violation]) -> int:
    """Snapshot ``violations`` to ``path``; returns the entry count."""
    entries = sorted(
        {_key(v) for v in violations}
    )
    payload = {
        "version": _VERSION,
        "entries": [
            {"path": p, "rule": r, "message": m} for p, r, m in entries
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
    return len(entries)


def load_baseline(path: str | Path) -> set[tuple[str, str, str]]:
    """The ``(path, rule, message)`` set a baseline file tolerates."""
    path = Path(path)
    if not path.is_file():
        raise ValidationError(f"baseline file not found: {path}")
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise ValidationError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        raise ValidationError(
            f"baseline {path} has unsupported format "
            f"(want version {_VERSION})"
        )
    entries = payload.get("entries", [])
    out: set[tuple[str, str, str]] = set()
    for entry in entries:
        try:
            out.add((entry["path"], entry["rule"], entry["message"]))
        except (TypeError, KeyError) as exc:
            raise ValidationError(
                f"baseline {path} entry {entry!r} is malformed"
            ) from exc
    return out


def apply_baseline(violations: list[Violation],
                   tolerated: set[tuple[str, str, str]]) -> list[Violation]:
    """Violations not covered by the baseline (the ones that fail CI)."""
    return [v for v in violations if _key(v) not in tolerated]
