"""qblint — the project's own static analysis layer.

Where :mod:`repro.db.semantic` checks *queries* before they run, this
package checks the *codebase* itself: a small, pluggable, ``ast``-based
linter enforcing the architectural invariants the QBISM reproduction
depends on (all block I/O flows through the storage layer, all errors
derive from :class:`~repro.errors.ReproError`, ...).  It runs as
``python -m repro.analysis <paths>`` and in CI next to the test suite.

Violations can be suppressed per line with ``# qblint: disable=<rule>``
(on the offending line or the line above) or per file with
``# qblint: disable-file=<rule>``.
"""

from __future__ import annotations

from repro.analysis.engine import Violation, lint_file, lint_paths
from repro.analysis.report import render_json, render_text
from repro.analysis.rules import ALL_RULES, Rule

__all__ = [
    "ALL_RULES",
    "Rule",
    "Violation",
    "lint_file",
    "lint_paths",
    "render_json",
    "render_text",
]
