"""Synthetic PET and MRI studies in patient space.

The paper's radiological data were "5 PET studies (each with 51 128x128
8-bit deep image slices) and 3 MRI studies (each with 44 512x512 8-bit deep
image slices)" from UCLA.  We synthesize stand-ins with the same shapes and
statistics: a per-study activity pattern painted over the phantom anatomy
in atlas space, carried into an anisotropic patient grid through a small
random affine misalignment (the ground-truth ``patient_to_atlas`` warp is
kept with each study so the load pipeline can be validated end to end).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.medical.warp import AffineTransform
from repro.synthdata.noise import smooth_field
from repro.synthdata.phantom import STRUCTURE_SPECS, BrainPhantom

__all__ = [
    "SyntheticStudy",
    "generate_pet_studies",
    "generate_mri_studies",
    "PET_SHAPE",
    "MRI_SHAPE",
]

#: patient-space shapes at the paper's full scale (axes are (x, y, z))
PET_SHAPE = (128, 128, 51)
MRI_SHAPE = (512, 512, 44)


@dataclass(frozen=True)
class SyntheticStudy:
    """One generated study, still in patient space."""

    modality: str  #: "PET" or "MRI"
    data: np.ndarray  #: uint8 array of patient-space intensities
    patient_to_atlas: AffineTransform  #: ground-truth warp
    activity: dict[str, float]  #: per-structure activity factor (PET only)

    @property
    def shape(self) -> tuple[int, ...]:
        """The study volume's ``(z, y, x)`` shape."""
        return tuple(self.data.shape)

    @property
    def nbytes(self) -> int:
        """Raw voxel payload size in bytes."""
        return int(self.data.nbytes)


def _random_misalignment(
    rng: np.random.Generator, atlas_side: int
) -> AffineTransform:
    """A small random rigid+scale perturbation in atlas space."""
    center = (atlas_side / 2.0,) * 3
    return AffineTransform.from_params(
        rotation_deg=tuple(rng.uniform(-4.0, 4.0, 3)),
        scale=tuple(rng.uniform(0.96, 1.04, 3)),
        translation=tuple(rng.uniform(-0.03, 0.03, 3) * atlas_side),
        center=center,
    )


def _patient_to_atlas(
    patient_shape: tuple[int, int, int],
    atlas_side: int,
    rng: np.random.Generator,
) -> AffineTransform:
    """Axis scaling from the patient grid onto the atlas cube, perturbed."""
    scale = np.array([atlas_side / s for s in patient_shape])
    base = AffineTransform.from_linear(np.diag(scale), np.zeros(3))
    return _random_misalignment(rng, atlas_side).compose(base)


def _to_patient_space(
    truth_atlas: np.ndarray,
    patient_to_atlas: AffineTransform,
    patient_shape: tuple[int, int, int],
) -> np.ndarray:
    """Sample the atlas-space truth at each patient voxel's atlas position."""
    return ndimage.affine_transform(
        truth_atlas,
        matrix=patient_to_atlas.linear,
        offset=patient_to_atlas.translation,
        output_shape=patient_shape,
        order=1,
        mode="constant",
        cval=0.0,
    )


def _quantize(field: np.ndarray) -> np.ndarray:
    return np.clip(np.rint(field * 255.0), 0, 255).astype(np.uint8)


def generate_pet_studies(
    phantom: BrainPhantom,
    count: int = 5,
    seed: int = 7,
    patient_shape: tuple[int, int, int] | None = None,
) -> list[SyntheticStudy]:
    """Functional studies: anatomy plus per-structure activity and noise."""
    atlas_side = phantom.grid.shape[0]
    if patient_shape is None:
        scale = atlas_side / 128
        patient_shape = (atlas_side, atlas_side, max(4, int(round(51 * scale))))
    rng = np.random.default_rng(seed)
    envelope = phantom.envelope.to_mask()
    studies = []
    for _ in range(count):
        # Per-study activity varies around each structure's baseline; the
        # spread is kept moderate so cross-study band-consistency regions
        # (the Table 4 workload) stay non-trivial, as with real cohorts.
        activity = {
            spec.name: float(np.clip(spec.base_activity + rng.normal(0, 0.12), 0.05, 1.0))
            for spec in STRUCTURE_SPECS
        }
        truth = phantom.anatomy * 0.45
        for spec in STRUCTURE_SPECS:
            mask = phantom.structures[spec.name].to_mask()
            truth[mask] = 0.25 + 0.7 * activity[spec.name]
        truth += 0.07 * smooth_field(phantom.grid.shape, atlas_side / 12, rng)
        truth *= envelope
        truth = np.clip(truth, 0.0, 1.0)
        transform = _patient_to_atlas(patient_shape, atlas_side, rng)
        patient = _to_patient_space(truth, transform, patient_shape)
        patient += rng.normal(0, 0.015, patient_shape)  # detector noise
        studies.append(
            SyntheticStudy(
                modality="PET",
                data=_quantize(np.clip(patient, 0.0, 1.0)),
                patient_to_atlas=transform,
                activity=activity,
            )
        )
    return studies


def generate_mri_studies(
    phantom: BrainPhantom,
    count: int = 3,
    seed: int = 11,
    patient_shape: tuple[int, int, int] | None = None,
) -> list[SyntheticStudy]:
    """Structural studies: tissue contrast, finer in-plane resolution."""
    atlas_side = phantom.grid.shape[0]
    if patient_shape is None:
        scale = atlas_side / 128
        patient_shape = (
            max(8, int(round(512 * scale))),
            max(8, int(round(512 * scale))),
            max(4, int(round(44 * scale))),
        )
    rng = np.random.default_rng(seed)
    envelope = phantom.envelope.to_mask()
    studies = []
    for _ in range(count):
        # Structural contrast: envelope boundary bright (cortex), deep
        # structures at their anatomy level, plus fine texture.
        interior = ndimage.binary_erosion(envelope, iterations=2)
        truth = phantom.anatomy.copy()
        truth[envelope & ~interior] = 0.9  # cortical rim
        truth += 0.05 * smooth_field(phantom.grid.shape, atlas_side / 24, rng)
        truth *= envelope
        truth = np.clip(truth, 0.0, 1.0)
        transform = _patient_to_atlas(patient_shape, atlas_side, rng)
        patient = _to_patient_space(truth, transform, patient_shape)
        patient += rng.normal(0, 0.01, patient_shape)
        studies.append(
            SyntheticStudy(
                modality="MRI",
                data=_quantize(np.clip(patient, 0.0, 1.0)),
                patient_to_atlas=transform,
                activity={},
            )
        )
    return studies
