"""Smooth Gaussian random fields.

The synthetic studies and organically shaped phantom structures are built
from correlated noise: white noise smoothed with a Gaussian kernel and
renormalized.  The correlation length controls how "blobby" the field is —
it is what gives the synthetic REGIONs the same run-length statistics
(power-law deltas, EQ 1) as real anatomy.
"""

from __future__ import annotations

from repro.errors import ValidationError

import numpy as np
from scipy import ndimage

__all__ = ["smooth_field", "smooth_field_like"]


def smooth_field(
    shape: tuple[int, ...],
    correlation_length: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """A zero-mean, unit-variance smooth random field of the given shape."""
    if correlation_length <= 0:
        raise ValidationError("correlation length must be positive")
    field = rng.standard_normal(shape)
    field = ndimage.gaussian_filter(field, sigma=correlation_length, mode="nearest")
    std = field.std()
    if std > 0:
        field = (field - field.mean()) / std
    return field


def smooth_field_like(
    reference: np.ndarray, correlation_length: float, rng: np.random.Generator
) -> np.ndarray:
    """Convenience wrapper matching the shape of an existing array."""
    return smooth_field(reference.shape, correlation_length, rng)
