"""Synthetic data: brain phantom atlas and PET/MRI study generators."""

from __future__ import annotations

from repro.synthdata.noise import smooth_field, smooth_field_like
from repro.synthdata.phantom import (
    STRUCTURE_SPECS,
    BrainPhantom,
    StructureSpec,
    build_phantom,
)
from repro.synthdata.studies import (
    MRI_SHAPE,
    PET_SHAPE,
    SyntheticStudy,
    generate_mri_studies,
    generate_pet_studies,
)

__all__ = [
    "smooth_field",
    "smooth_field_like",
    "BrainPhantom",
    "StructureSpec",
    "STRUCTURE_SPECS",
    "build_phantom",
    "SyntheticStudy",
    "generate_pet_studies",
    "generate_mri_studies",
    "PET_SHAPE",
    "MRI_SHAPE",
]
