"""A synthetic brain atlas: the stand-in for the Talairach & Tournoux data.

The paper's atlas was digitally extracted from [29] and "represented 11
neuro-anatomic structures as REGIONs in a 128x128x128 atlas space grid".
We cannot ship that data, so this module builds a deterministic phantom
with the same *statistics*: 11 compact, organically shaped 3-D structures
(ellipsoids modulated by smooth noise) inside a brain-shaped envelope, at
sizes spanning the same range as the paper's (a hemisphere of ~8% of the
grid down to deep nuclei of a few thousand voxels at 128^3).

All geometry is expressed in fractions of the grid side, so the same
phantom scales from the 32^3 grids the tests use to the 128^3 grid of the
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.curves import GridSpec
from repro.errors import UnknownNameError
from repro.regions import Region
from repro.synthdata.noise import smooth_field

__all__ = ["StructureSpec", "BrainPhantom", "build_phantom", "STRUCTURE_SPECS"]


@dataclass(frozen=True)
class StructureSpec:
    """Geometry of one structure, in grid-side fractions.

    ``wobble`` is the amplitude of the smooth-noise modulation of the
    ellipsoid boundary (0 = exact ellipsoid, 0.5 = very organic).
    """

    name: str
    center: tuple[float, float, float]
    radii: tuple[float, float, float]
    wobble: float = 0.25
    #: baseline physiological activity used by the synthetic PET generator
    base_activity: float = 0.5


#: the 11 named structures of the phantom atlas.  ``ntal`` and ``ntal1``
#: reuse the paper's names: ntal is a deep midline structure, ntal1 is one
#: brain hemisphere (Figure 6a), derived below from the envelope.
STRUCTURE_SPECS: tuple[StructureSpec, ...] = (
    StructureSpec("ntal", (0.50, 0.48, 0.42), (0.14, 0.10, 0.085), 0.30, 0.55),
    StructureSpec("hippocampus_l", (0.34, 0.58, 0.38), (0.055, 0.10, 0.05), 0.35, 0.75),
    StructureSpec("hippocampus_r", (0.66, 0.58, 0.38), (0.055, 0.10, 0.05), 0.35, 0.75),
    StructureSpec("putamen_l", (0.38, 0.46, 0.46), (0.05, 0.08, 0.055), 0.25, 0.65),
    StructureSpec("putamen_r", (0.62, 0.46, 0.46), (0.05, 0.08, 0.055), 0.25, 0.65),
    StructureSpec("thalamus", (0.50, 0.52, 0.46), (0.095, 0.075, 0.06), 0.25, 0.60),
    StructureSpec("caudate_l", (0.42, 0.40, 0.52), (0.045, 0.085, 0.05), 0.30, 0.55),
    StructureSpec("caudate_r", (0.58, 0.40, 0.52), (0.045, 0.085, 0.05), 0.30, 0.55),
    StructureSpec("cerebellum", (0.50, 0.72, 0.28), (0.17, 0.12, 0.10), 0.30, 0.45),
    StructureSpec("brainstem", (0.50, 0.62, 0.22), (0.055, 0.065, 0.14), 0.20, 0.40),
    StructureSpec("cortex_band", (0.50, 0.42, 0.60), (0.26, 0.24, 0.16), 0.40, 0.70),
)

#: the whole-brain envelope (not one of the 11, but every study lives in it)
ENVELOPE = StructureSpec("brain", (0.50, 0.50, 0.46), (0.40, 0.44, 0.34), 0.12, 0.30)


@dataclass(frozen=True)
class BrainPhantom:
    """The built atlas: envelope, hemisphere, and the 11 named structures."""

    grid: GridSpec
    envelope: Region
    structures: dict[str, Region]
    #: dense float field in [0, 1]: baseline anatomy used by the study generators
    anatomy: np.ndarray

    @property
    def structure_names(self) -> list[str]:
        """Names of the phantom's anatomical structures."""
        return list(self.structures)

    def structure(self, name: str) -> Region:
        """Look up one structure's REGION by name (KeyError with suggestions)."""
        try:
            return self.structures[name]
        except KeyError:
            known = ", ".join(sorted(self.structures))
            raise UnknownNameError(f"phantom has no structure {name!r}; known: {known}") from None


def _wobbly_ellipsoid_mask(
    grid: GridSpec, spec: StructureSpec, rng: np.random.Generator
) -> np.ndarray:
    """Boolean mask of an ellipsoid whose boundary is modulated by smooth noise."""
    side = max(grid.shape)
    axes = [np.arange(s, dtype=np.float64) for s in grid.shape]
    mesh = np.meshgrid(*axes, indexing="ij", sparse=True)
    q = np.zeros(grid.shape, dtype=np.float64)
    for m, c, r in zip(mesh, spec.center, spec.radii):
        q = q + ((m - c * side) / (r * side)) ** 2
    if spec.wobble > 0:
        modulation = smooth_field(grid.shape, correlation_length=side / 10, rng=rng)
        threshold = 1.0 + spec.wobble * modulation
    else:
        threshold = 1.0
    return q <= threshold


def build_phantom(grid_side: int = 128, seed: int = 1994) -> BrainPhantom:
    """Build the deterministic atlas phantom on a cubic grid.

    The structure list always contains ``ntal1`` (the left hemisphere:
    envelope clipped to x < center, eroded slightly from the midline) plus
    the 11 named deep structures, all intersected with the envelope.
    """
    grid = GridSpec((grid_side,) * 3)
    rng = np.random.default_rng(seed)
    envelope_mask = _wobbly_ellipsoid_mask(grid, ENVELOPE, rng)
    envelope = Region.from_mask(envelope_mask, grid)

    structures: dict[str, Region] = {}
    # ntal1: one hemisphere of the brain (Figure 6a), clipped off the midline.
    midline = int(grid_side * 0.49)
    hemisphere_mask = envelope_mask.copy()
    hemisphere_mask[midline:, :, :] = False
    structures["ntal1"] = Region.from_mask(hemisphere_mask, grid)

    for spec in STRUCTURE_SPECS:
        mask = _wobbly_ellipsoid_mask(grid, spec, rng) & envelope_mask
        structures[spec.name] = Region.from_mask(mask, grid)

    # Baseline anatomy: bright interior fading toward the envelope boundary,
    # plus structure-specific contrast, used by both PET and MRI generators.
    anatomy = np.zeros(grid.shape, dtype=np.float64)
    anatomy[envelope_mask] = 0.35
    texture = smooth_field(grid.shape, correlation_length=grid_side / 16, rng=rng)
    anatomy += 0.08 * texture * envelope_mask
    for spec in STRUCTURE_SPECS:
        mask = structures[spec.name].to_mask()
        anatomy[mask] = 0.35 + 0.45 * spec.base_activity
    anatomy = np.clip(anatomy, 0.0, 1.0)

    return BrainPhantom(grid=grid, envelope=envelope, structures=structures, anatomy=anatomy)
