"""The VOLUME data type, DATA_REGION results, intensity banding, vector fields."""

from __future__ import annotations

from repro.volumes.banding import (
    IntensityBand,
    band_region,
    bands_covering,
    uniform_bands,
    union_of_bands,
)
from repro.volumes.data_region import DataRegion
from repro.volumes.field import VectorField, gradient_field
from repro.volumes.volume import Volume, VolumeHeader

__all__ = [
    "Volume",
    "VolumeHeader",
    "DataRegion",
    "VectorField",
    "gradient_field",
    "IntensityBand",
    "band_region",
    "uniform_bands",
    "bands_covering",
    "union_of_bands",
]
