"""n-D m-vector fields (§1 of the paper).

The paper notes its techniques "can be extended ... to handle vector fields
by simply storing vectors in place of scalars in the appropriate data
structures".  :class:`VectorField` does exactly that: a curve-ordered field
whose value at each voxel is an m-vector (e.g. wind velocity, or an image
gradient), reusing REGION extraction unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.curves import GridSpec, SpaceFillingCurve, curve_for_grid
from repro.errors import CurveMismatchError, GridMismatchError, ValidationError
from repro.regions import Region, concat_ranges
from repro.volumes.volume import Volume, _all_coords

__all__ = ["VectorField", "gradient_field"]


class VectorField:
    """A curve-ordered field of m-dimensional vector samples."""

    __slots__ = ("_grid", "_curve", "_values")

    def __init__(self, values: np.ndarray, grid: GridSpec, curve: SpaceFillingCurve | str | None = None):
        if not grid.is_cube:
            raise GridMismatchError("vector fields require a cubic power-of-two grid")
        if isinstance(curve, str) or curve is None:
            curve = curve_for_grid(grid, curve or "hilbert")
        values = np.ascontiguousarray(values)
        if values.ndim != 2 or values.shape[0] != grid.size:
            raise ValidationError(
                f"expected ({grid.size}, m) curve-ordered vectors, got {values.shape}"
            )
        self._grid = grid
        self._curve = curve
        self._values = values
        self._values.setflags(write=False)

    @classmethod
    def from_array(cls, array: np.ndarray, curve: SpaceFillingCurve | str | None = None) -> "VectorField":
        """Reorder an ``grid_shape + (m,)`` array into curve order."""
        array = np.asarray(array)
        grid = GridSpec(array.shape[:-1])
        if isinstance(curve, str) or curve is None:
            curve = curve_for_grid(grid, curve or "hilbert")
        coords = _all_coords(grid)
        order = curve.index(coords)
        values = np.empty((grid.size, array.shape[-1]), dtype=array.dtype)
        values[order] = array.reshape(-1, array.shape[-1])
        return cls(values, grid, curve)

    @property
    def grid(self) -> GridSpec:
        """The grid the field lives on."""
        return self._grid

    @property
    def curve(self) -> SpaceFillingCurve:
        """The linearization curve."""
        return self._curve

    @property
    def values(self) -> np.ndarray:
        """The per-voxel vector array."""
        return self._values

    @property
    def vector_dim(self) -> int:
        """m: the dimensionality of each sample."""
        return int(self._values.shape[1])

    def vector_at(self, *coords: int) -> np.ndarray:
        """The m-vector sampled at one grid point."""
        return self._values[self._curve.index_point(*coords)]

    def extract(self, region: Region) -> tuple[Region, np.ndarray]:
        """Vectors inside a region, in curve order: ``(region, (n, m) array)``."""
        self._grid.require_same(region.grid)
        if region.curve != self._curve:
            raise CurveMismatchError("region and field use different curves")
        ivs = region.intervals
        return region, self._values[concat_ranges(ivs.starts, ivs.stops)]

    def magnitude(self) -> Volume:
        """The scalar field of vector magnitudes (shares grid and curve)."""
        mags = np.sqrt((self._values.astype(np.float64) ** 2).sum(axis=1))
        return Volume(mags, self._grid, self._curve)

    def component(self, i: int) -> Volume:
        """One component as a scalar VOLUME."""
        return Volume(np.ascontiguousarray(self._values[:, i]), self._grid, self._curve)

    def __repr__(self) -> str:
        return (
            f"VectorField(grid={self._grid.shape}, m={self.vector_dim}, "
            f"curve={self._curve.name})"
        )


def gradient_field(volume: Volume) -> VectorField:
    """Central-difference gradient of a VOLUME, as a vector field.

    This is one of the DX post-processing steps the paper's UI offers
    ("computing a gradient field", §5.2).
    """
    dense = volume.to_array().astype(np.float64)
    grads = np.gradient(dense)
    stacked = np.stack(grads, axis=-1)
    return VectorField.from_array(stacked, volume.curve)
