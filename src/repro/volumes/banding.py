"""Intensity banding (§3.3, the *Intensity Band* entity).

An intensity band is the REGION of voxels of a VOLUME whose intensities
fall in a particular interval.  QBISM precomputes bands with fixed width
and uniform spacing (32 units over 0-255 in the prototype) at load time and
stores them as a redundant index: an attribute query ("show the high
intensity voxels") becomes a cheap REGION fetch instead of a full-volume
scan.

Because VOLUMEs hold values in curve order, a band's run list falls out of
a thresholded boolean array directly — no sorting is involved.
"""

from __future__ import annotations

from repro.errors import ValidationError

from dataclasses import dataclass

import numpy as np

from repro.regions import Region
from repro.regions.intervals import IntervalSet
from repro.volumes.volume import Volume

__all__ = ["IntensityBand", "band_region", "uniform_bands", "bands_covering", "union_of_bands"]


@dataclass(frozen=True)
class IntensityBand:
    """One precomputed band: the closed intensity interval and its REGION."""

    low: int
    high: int
    region: Region

    @property
    def label(self) -> str:
        """Human-readable band label."""
        return f"{self.low}-{self.high}"

    def covers(self, lo: float, hi: float) -> bool:
        """Does the query interval ``[lo, hi]`` lie inside this band?"""
        return self.low <= lo and hi <= self.high


def band_region(volume: Volume, low: float, high: float) -> Region:
    """The REGION of voxels with intensity in the closed interval ``[low, high]``."""
    if low > high:
        raise ValidationError(f"empty intensity interval [{low}, {high}]")
    mask = (volume.values >= low) & (volume.values <= high)
    return Region(IntervalSet.from_mask(mask), volume.grid, volume.curve)


def uniform_bands(volume: Volume, width: int = 32, value_range: tuple[int, int] = (0, 255)) -> list[IntensityBand]:
    """The paper's load-time banding: uniformly spaced bands of fixed width.

    The default (width 32 over 0-255) produces the 8 bands of the
    prototype: 0-31, 32-63, ..., 224-255.
    """
    if width < 1:
        raise ValidationError("band width must be >= 1")
    lo, hi = value_range
    if lo > hi:
        raise ValidationError("invalid value range")
    bands = []
    for start in range(lo, hi + 1, width):
        end = min(start + width - 1, hi)
        bands.append(IntensityBand(start, end, band_region(volume, start, end)))
    return bands


def bands_covering(bands: list[IntensityBand], lo: float, hi: float) -> list[IntensityBand] | None:
    """The minimal set of stored bands whose union covers ``[lo, hi]`` exactly.

    Returns ``None`` when the query interval does not align with band
    boundaries (the query must then fall back to scanning the volume and
    post-filtering, as the paper notes for non-band-aligned ranges).
    """
    chosen = [b for b in bands if not (b.high < lo or b.low > hi)]
    if not chosen:
        return None
    chosen.sort(key=lambda b: b.low)
    exact = (
        chosen[0].low == lo
        and chosen[-1].high == hi
        and all(a.high + 1 == b.low for a, b in zip(chosen, chosen[1:]))
    )
    return chosen if exact else None


def union_of_bands(bands: list[IntensityBand]) -> Region:
    """Union the REGIONs of several stored bands (contiguous or not)."""
    if not bands:
        raise ValidationError("no bands to union")
    first = bands[0].region
    if len(bands) == 1:
        return first
    return first.union(*[b.region for b in bands[1:]])
