"""The DATA_REGION type: a REGION plus the data values at each of its points.

A recent version of the paper's prototype introduced DATA_REGION as the
return type of ``EXTRACT_DATA()`` (§3.2, footnote 6): it carries a REGION
and one value per member voxel.  It is the unit shipped over the network to
the visualization front end, so it also knows how to serialize itself
compactly.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import CodecError, CurveMismatchError, ValidationError
from repro.regions import Region

__all__ = ["DataRegion", "DATA_REGION_MAGIC"]

DATA_REGION_MAGIC = b"DRG1"
_HEADER = struct.Struct("<4s2sQ")  # magic, dtype code, region byte length
_DTYPE_CODES = {"u1": np.uint8, "u2": np.uint16, "f4": np.float32, "f8": np.float64}


class DataRegion:
    """Sparse scalar data: values defined exactly on the voxels of a region."""

    __slots__ = ("_region", "_values")

    def __init__(self, region: Region, values: np.ndarray):
        values = np.ascontiguousarray(values)
        if values.ndim != 1 or values.shape[0] != region.voxel_count:
            raise ValidationError(
                f"expected {region.voxel_count} values (one per voxel), "
                f"got shape {values.shape}"
            )
        self._region = region
        self._values = values
        self._values.setflags(write=False)

    @property
    def region(self) -> Region:
        """The geometric region the data covers."""
        return self._region

    @property
    def values(self) -> np.ndarray:
        """Values in curve order of the region's voxels (read-only)."""
        return self._values

    @property
    def voxel_count(self) -> int:
        """Number of voxels."""
        return self._region.voxel_count

    @property
    def dtype(self) -> np.dtype:
        """Element dtype."""
        return self._values.dtype

    @property
    def nbytes(self) -> int:
        """Payload bytes (values only, excluding the region runs)."""
        return int(self._values.nbytes)

    # ------------------------------------------------------------------ #
    # probes and restriction
    # ------------------------------------------------------------------ #

    def value_at(self, *coords: int):
        """The value at one voxel; raises if the voxel is outside the region."""
        idx = self._region.curve.index_point(*coords)
        rank = self._region.intervals.rank_of(np.asarray([idx]))[0]
        return self._values[rank]

    def restrict(self, sub: Region) -> "DataRegion":
        """Clip to ``sub``: data on the intersection of both regions.

        This implements mixed queries on an already extracted result, e.g.
        narrowing an intensity band to one structure.
        """
        if sub.curve != self._region.curve:
            raise CurveMismatchError("sub-region must share the parent's curve")
        inter = self._region.intersection(sub)
        ranks = self._region.intervals.rank_of(inter.intervals.indices())
        return DataRegion(inter, self._values[ranks])

    def band(self, lo: float, hi: float) -> "DataRegion":
        """Attribute filter: keep voxels with values in ``[lo, hi]``."""
        from repro.regions.intervals import IntervalSet

        keep = (self._values >= lo) & (self._values <= hi)
        member_idx = self._region.intervals.indices()[keep]
        sub = Region(IntervalSet.from_indices(member_idx), self._region.grid, self._region.curve)
        return DataRegion(sub, self._values[keep])

    # ------------------------------------------------------------------ #
    # statistics (support for multi-study aggregation, §6.4)
    # ------------------------------------------------------------------ #

    def min(self):
        """Smallest value, or None when the region is empty."""
        return self._values.min() if self._values.size else None

    def max(self):
        """Largest value, or None when the region is empty."""
        return self._values.max() if self._values.size else None

    def mean(self) -> float:
        """Mean value; raises on an empty region."""
        if not self._values.size:
            raise ValidationError("empty data region has no mean")
        return float(self._values.mean())

    def histogram(self, bins: int = 256, value_range: tuple[float, float] | None = None):
        """Value histogram ``(counts, edges)`` over the region's voxels."""
        return np.histogram(self._values, bins=bins, range=value_range)

    # ------------------------------------------------------------------ #
    # dense rendering support
    # ------------------------------------------------------------------ #

    def to_array(self, fill=0) -> np.ndarray:
        """Scatter into a dense ndim-dimensional array, ``fill`` elsewhere."""
        out = np.full(self._region.grid.shape, fill, dtype=self._values.dtype)
        if self.voxel_count:
            coords = self._region.coords()
            out[tuple(coords.T)] = self._values
        return out

    # ------------------------------------------------------------------ #
    # serialization (the network payload)
    # ------------------------------------------------------------------ #

    def to_bytes(self, codec: str = "naive") -> bytes:
        """Serialize region (with the given run codec) + values."""
        region_bytes = self._region.to_bytes(codec)
        for code, dt in _DTYPE_CODES.items():
            if np.dtype(dt) == self._values.dtype:
                header = _HEADER.pack(DATA_REGION_MAGIC, code.encode("ascii"), len(region_bytes))
                return header + region_bytes + self._values.tobytes()
        raise CodecError(f"unsupported DATA_REGION dtype {self._values.dtype}")

    @classmethod
    def from_bytes(cls, data: bytes) -> "DataRegion":
        """Deserialize a payload produced by :meth:`to_bytes`."""
        if len(data) < _HEADER.size or data[:4] != DATA_REGION_MAGIC:
            raise CodecError("not a serialized DATA_REGION (bad magic)")
        _, code, region_len = _HEADER.unpack_from(data)
        try:
            dtype = np.dtype(_DTYPE_CODES[code.decode("ascii")])
        except KeyError:
            raise CodecError(f"unknown DATA_REGION dtype code {code!r}") from None
        offset = _HEADER.size
        region = Region.from_bytes(data[offset:offset + region_len])
        values = np.frombuffer(data, dtype=dtype, offset=offset + region_len)
        return cls(region, values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataRegion):
            return NotImplemented
        return self._region == other._region and bool(
            np.array_equal(self._values, other._values)
        )

    def __hash__(self) -> int:  # pragma: no cover - rarely hashed
        return hash((self._region, self._values.tobytes()))

    def __repr__(self) -> str:
        return (
            f"DataRegion({self.voxel_count} voxels, {self._region.run_count} runs, "
            f"dtype={self._values.dtype})"
        )
