"""The VOLUME spatial data type (§3.1 / §4.1 of the paper).

A :class:`Volume` is a 3-D scalar field sampled on a complete, regular,
cubic grid, stored as a flat array of intensity values sorted in curve
order (Hilbert by default) — the positions are implied by the ordering.
Storing in Hilbert order keeps spatially close voxels close on disk, which
is what makes run-based extraction I/O-efficient.

Serialization (:meth:`Volume.to_bytes`) produces the long-field layout the
DBMS stores: a small self-describing header followed by the raw values.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.curves import GridSpec, SpaceFillingCurve, curve_for_grid
from repro.errors import CodecError, CurveMismatchError, GridMismatchError, ValidationError
from repro.regions import Region, concat_ranges
from repro.regions.intervals import IntervalSet
from repro.volumes.data_region import DataRegion

__all__ = ["Volume", "VolumeHeader", "VOLUME_MAGIC"]

VOLUME_MAGIC = b"VOL1"
# magic, curve, ndim, bits, dtype code, byte offset of the value array
_HEADER = struct.Struct("<4s8sBB2sI")
_DTYPE_CODES = {"u1": np.uint8, "u2": np.uint16, "f4": np.float32, "f8": np.float64}


@dataclass(frozen=True)
class VolumeHeader:
    """Decoded serialization header of a VOLUME long field."""

    grid: GridSpec
    curve: SpaceFillingCurve
    dtype: np.dtype
    data_offset: int

    @property
    def itemsize(self) -> int:
        """Bytes per voxel."""
        return int(np.dtype(self.dtype).itemsize)

    def value_byte_ranges(self, intervals: IntervalSet) -> tuple[np.ndarray, np.ndarray]:
        """Byte ranges (relative to the long field) holding a region's values.

        This is what lets the LFM read *only* the pages containing the
        requested voxels — the early-filtering mechanism of §6.
        """
        starts = self.data_offset + intervals.starts * self.itemsize
        stops = self.data_offset + intervals.stops * self.itemsize
        return starts, stops


def _dtype_code(dtype: np.dtype) -> str:
    for code, dt in _DTYPE_CODES.items():
        if np.dtype(dt) == dtype:
            return code
    supported = ", ".join(_DTYPE_CODES)
    raise CodecError(f"unsupported volume dtype {dtype}; supported: {supported}")


class Volume:
    """A curve-ordered scalar field over a cubic power-of-two grid."""

    __slots__ = ("_grid", "_curve", "_values")

    def __init__(self, values: np.ndarray, grid: GridSpec, curve: SpaceFillingCurve | str | None = None):
        if not grid.is_cube:
            raise GridMismatchError(
                f"VOLUMEs require a cubic power-of-two grid, got {grid.shape}; "
                "keep raw studies in scanline arrays and warp them first"
            )
        if isinstance(curve, str) or curve is None:
            curve = curve_for_grid(grid, curve or "hilbert")
        if curve.ndim != grid.ndim or curve.bits != grid.bits:
            raise CurveMismatchError(f"curve {curve!r} does not cover grid {grid.shape}")
        values = np.ascontiguousarray(values)
        if values.ndim != 1 or values.shape[0] != grid.size:
            raise ValidationError(
                f"expected {grid.size} curve-ordered values, got shape {values.shape}"
            )
        self._grid = grid
        self._curve = curve
        self._values = values
        self._values.setflags(write=False)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_array(cls, array: np.ndarray, curve: SpaceFillingCurve | str | None = None,
                   grid: GridSpec | None = None) -> "Volume":
        """Reorder a conventional ndim-dimensional array into curve order."""
        array = np.asarray(array)
        if grid is None:
            grid = GridSpec(array.shape)
        elif array.shape != grid.shape:
            raise GridMismatchError(f"array shape {array.shape} != grid {grid.shape}")
        if not grid.is_cube:
            raise GridMismatchError(
                f"VOLUMEs require a cubic power-of-two grid, got {grid.shape}; "
                "keep raw studies in scanline arrays and warp them first"
            )
        if isinstance(curve, str) or curve is None:
            curve = curve_for_grid(grid, curve or "hilbert")
        coords = _all_coords(grid)
        order = curve.index(coords)
        values = np.empty(grid.size, dtype=array.dtype)
        values[order] = array.ravel()
        return cls(values, grid, curve)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    @property
    def grid(self) -> GridSpec:
        """The grid the volume lives on."""
        return self._grid

    @property
    def curve(self) -> SpaceFillingCurve:
        """The linearization curve."""
        return self._curve

    @property
    def values(self) -> np.ndarray:
        """All intensities in curve order (read-only view)."""
        return self._values

    @property
    def dtype(self) -> np.dtype:
        """Element dtype."""
        return self._values.dtype

    @property
    def voxel_count(self) -> int:
        """Number of voxels."""
        return self._grid.size

    @property
    def nbytes(self) -> int:
        """Payload size in bytes."""
        return int(self._values.nbytes)

    def to_array(self) -> np.ndarray:
        """Reorder back into a conventional ndim-dimensional array."""
        coords = _all_coords(self._grid)
        order = self._curve.index(coords)
        return self._values[order].reshape(self._grid.shape)

    # ------------------------------------------------------------------ #
    # probes and extraction (the paper's requirements on VOLUMEs, §4.1)
    # ------------------------------------------------------------------ #

    def value_at(self, *coords: int):
        """Random spatial probe: the intensity at one grid point."""
        idx = self._curve.index_point(*coords)
        return self._values[idx]

    def values_at(self, coords: np.ndarray) -> np.ndarray:
        """Vectorized random probes for ``(n, ndim)`` coordinates."""
        return self._values[self._curve.index(np.asarray(coords, dtype=np.int64))]

    def extract(self, region: Region) -> DataRegion:
        """``EXTRACT_DATA(v, r)``: the intensities of ``v`` inside ``r``.

        Returns a :class:`DataRegion` (the paper's DATA_REGION type): the
        region plus one value per member voxel, in curve order.
        """
        self._grid.require_same(region.grid)
        if region.curve != self._curve:
            raise CurveMismatchError(
                "region and volume are linearized along different curves; "
                "reorder the region first"
            )
        ivs = region.intervals
        gathered = self._values[concat_ranges(ivs.starts, ivs.stops)]
        return DataRegion(region, gathered)

    def full_region(self) -> Region:
        """The REGION covering every voxel (a single run)."""
        return Region(IntervalSet.full(self._curve.length), self._grid, self._curve)

    def extract_all(self) -> DataRegion:
        """The whole study as a DATA_REGION (the paper's Q1)."""
        return DataRegion(self.full_region(), self._values)

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #

    def histogram(self, bins: int = 256, value_range: tuple[float, float] | None = None):
        """Intensity histogram ``(counts, edges)`` over the whole volume."""
        return np.histogram(self._values, bins=bins, range=value_range)

    # ------------------------------------------------------------------ #
    # serialization (the long-field representation)
    # ------------------------------------------------------------------ #

    def to_bytes(self, align: int | None = None) -> bytes:
        """Serialize to a self-describing long-field payload.

        With ``align`` (e.g. 4096), the value array starts at that byte
        boundary within the payload.  The study loader stores volumes
        page-aligned so a whole-study read costs exactly
        ``size / page_size`` I/Os, as in the paper's Table 3.
        """
        code = _dtype_code(self._values.dtype)
        data_offset = _HEADER.size
        if align is not None:
            if align <= 0:
                raise ValidationError("align must be positive")
            data_offset = max(align, -(-_HEADER.size // align) * align)
        header = _HEADER.pack(
            VOLUME_MAGIC,
            self._curve.name.encode("ascii").ljust(8, b"\0"),
            self._grid.ndim,
            self._curve.bits,
            code.encode("ascii"),
            data_offset,
        )
        padding = b"\0" * (data_offset - _HEADER.size)
        return header + padding + self._values.tobytes()

    @classmethod
    def parse_header(cls, data: bytes) -> "VolumeHeader":
        """Decode just the header (enough bytes for one page suffice)."""
        from repro.curves import CURVE_CLASSES

        if len(data) < _HEADER.size or data[:4] != VOLUME_MAGIC:
            raise CodecError("not a serialized VOLUME (bad magic)")
        _, curve_name, ndim, bits, code, data_offset = _HEADER.unpack_from(data)
        curve_name = curve_name.rstrip(b"\0").decode("ascii")
        try:
            dtype = np.dtype(_DTYPE_CODES[code.decode("ascii")])
        except KeyError:
            raise CodecError(f"serialized VOLUME uses unknown dtype code {code!r}") from None
        try:
            curve = CURVE_CLASSES[curve_name](ndim, bits)
        except KeyError:
            raise CodecError(f"serialized VOLUME uses unknown curve {curve_name!r}") from None
        side = 1 << bits
        grid = GridSpec((side,) * ndim)
        return VolumeHeader(grid=grid, curve=curve, dtype=dtype, data_offset=data_offset)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Volume":
        """Deserialize a payload produced by :meth:`to_bytes`."""
        header = cls.parse_header(data)
        values = np.frombuffer(data, dtype=header.dtype, offset=header.data_offset)
        if values.size != header.grid.size:
            raise CodecError(
                f"VOLUME payload holds {values.size} values, expected {header.grid.size}"
            )
        return cls(values, header.grid, header.curve)

    @staticmethod
    def header_size() -> int:
        """Bytes of the compact (unaligned) header."""
        return _HEADER.size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Volume):
            return NotImplemented
        return (
            self._grid.shape == other._grid.shape
            and self._curve == other._curve
            and self._values.dtype == other._values.dtype
            and bool(np.array_equal(self._values, other._values))
        )

    def __hash__(self) -> int:  # pragma: no cover - volumes rarely hashed
        return hash((self._grid.shape, self._curve, self._values.tobytes()))

    def __repr__(self) -> str:
        return (
            f"Volume(grid={self._grid.shape}, curve={self._curve.name}, "
            f"dtype={self._values.dtype}, {self.nbytes} bytes)"
        )


def _all_coords(grid: GridSpec) -> np.ndarray:
    """All grid coordinates in row-major order, ``(size, ndim)``."""
    axes = [np.arange(s, dtype=np.int64) for s in grid.shape]
    mesh = np.meshgrid(*axes, indexing="ij")
    return np.stack([m.ravel() for m in mesh], axis=1)
