"""Exception hierarchy for the QBISM reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  Subsystems add
more specific types (storage, SQL, medical layer) below it.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "UnknownNameError",
    "DuplicateNameError",
    "GridMismatchError",
    "CurveMismatchError",
    "CodecError",
    "StorageError",
    "AllocationError",
    "LongFieldError",
    "WalError",
    "SimulatedCrash",
    "DatabaseError",
    "SqlSyntaxError",
    "SqlTypeError",
    "CatalogError",
    "ExecutionError",
    "UnsupportedStatementError",
    "StaticAnalysisError",
    "ResolutionError",
    "TypeCheckError",
    "SpatialUsageError",
    "AggregateUsageError",
    "FunctionUsageError",
    "MedicalError",
    "RegistrationError",
    "ConcurrencyError",
    "LockOrderError",
    "PotentialDeadlockError",
    "ServerError",
    "ServerBusyError",
    "SessionClosedError",
    "ClusterError",
    "ShardUnavailableError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ValidationError(ReproError, ValueError):
    """An argument failed a library-level validation check."""


class UnknownNameError(ReproError, KeyError):
    """A lookup by name (structure, codec, curve) found nothing."""


class DuplicateNameError(ReproError, KeyError):
    """A name or key that must be unique was registered twice."""


class GridMismatchError(ReproError, ValueError):
    """Two spatial objects defined on incompatible grids were combined."""


class CurveMismatchError(ReproError, ValueError):
    """Two objects linearized along different space-filling curves were combined."""


class CodecError(ReproError, ValueError):
    """A REGION/integer codec was asked to encode or decode invalid data."""


class StorageError(ReproError):
    """Base class for storage-engine failures."""


class AllocationError(StorageError):
    """The buddy allocator could not satisfy a request."""


class LongFieldError(StorageError):
    """An operation referenced a missing or invalid long field."""


class WalError(StorageError):
    """A write-ahead-log operation could not be performed safely."""


class SimulatedCrash(StorageError):
    """A fault-injection schedule cut the power mid-operation.

    Raised by :class:`repro.storage.faults.FaultyDevice` at its scheduled
    crash point, and by every later operation on the same (now offline)
    device.  Test harnesses catch it, harvest the surviving device image,
    and reopen to exercise recovery.
    """


class DatabaseError(ReproError):
    """Base class for relational-engine failures."""


class SqlSyntaxError(DatabaseError, ValueError):
    """The SQL text could not be parsed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SqlTypeError(DatabaseError, TypeError):
    """An expression was applied to values of the wrong SQL type."""


class CatalogError(DatabaseError, KeyError):
    """A table, column, or function referenced in a query does not exist."""


class ExecutionError(DatabaseError, RuntimeError):
    """A query plan failed during execution."""


class UnsupportedStatementError(DatabaseError, ValueError):
    """A statement form is not supported in the requested context."""


class StaticAnalysisError(DatabaseError):
    """Base class for errors found by the semantic analyzer before execution.

    Instances carry the full list of structured diagnostics on
    ``self.diagnostics``; ``self.code`` and ``self.span`` expose the primary
    (first) diagnostic's stable error code and source span.  Concrete
    subclasses mix in the legacy exception type callers already catch for
    the same class of mistake, so adding the static pass changes *when*
    queries fail, never *what* callers must handle.
    """

    def __init__(self, diagnostics):
        self.diagnostics = list(diagnostics)
        primary = self.diagnostics[0]
        self.code = primary.code
        self.span = primary.span
        super().__init__(primary.format())


class ResolutionError(StaticAnalysisError, CatalogError):
    """A name (table, alias, column, function) did not resolve (QB1xx)."""


class TypeCheckError(StaticAnalysisError, SqlTypeError):
    """Static type inference found an ill-typed expression (QB2xx)."""


class SpatialUsageError(StaticAnalysisError, SqlTypeError):
    """A LONGFIELD / spatial value was used in a scalar context (QB3xx)."""


class AggregateUsageError(StaticAnalysisError, ExecutionError):
    """An aggregate appeared where SQL does not allow one (QB1xx)."""


class FunctionUsageError(StaticAnalysisError, ExecutionError):
    """A function call cannot succeed: wrong arity or argument types (QB2xx).

    Derives :class:`ExecutionError` because at run time such calls fail
    *inside* the function and surface as wrapped execution errors.
    """


class ConcurrencyError(ReproError, RuntimeError):
    """A lock was used outside its protocol (bad nesting, upgrade attempt)."""


class LockOrderError(ConcurrencyError):
    """Lockdep saw an acquisition that inverts the declared lock hierarchy.

    No deadlock happened *yet*: the edge merely contradicts the rank order
    in :data:`repro.concurrency.lockdep.DEFAULT_RANKS`, which is enough to
    make one possible under the wrong interleaving.
    """


class PotentialDeadlockError(ConcurrencyError):
    """Lockdep found a cycle in the lock-acquisition-order graph.

    Raised on the acquisition that *closes* the cycle, even when the
    threads involved never actually blocked each other — the ABBA pattern
    is reported the first time both orders have been observed.
    """


class ServerError(ReproError):
    """Base class for query-serving failures (sessions, worker pool)."""


class ServerBusyError(ServerError):
    """The server's admission queue is full and the policy is ``reject``.

    Clients should back off and retry; the statement was never enqueued,
    so nothing was executed.
    """


class SessionClosedError(ServerError):
    """A statement was submitted on a session that has been closed."""


class MedicalError(ReproError):
    """Base class for medical-layer failures (load pipeline, server)."""


class RegistrationError(MedicalError, RuntimeError):
    """Affine registration between patient and atlas space failed."""


class ClusterError(ServerError):
    """Base class for sharded-cluster failures (routing, merging, shipping)."""


class ShardUnavailableError(ClusterError):
    """A shard did not answer within the router's timeout (and no replica
    could serve the read either)."""
