"""Exception hierarchy for the QBISM reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  Subsystems add
more specific types (storage, SQL, medical layer) below it.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GridMismatchError",
    "CurveMismatchError",
    "CodecError",
    "StorageError",
    "AllocationError",
    "LongFieldError",
    "DatabaseError",
    "SqlSyntaxError",
    "SqlTypeError",
    "CatalogError",
    "ExecutionError",
    "MedicalError",
    "RegistrationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GridMismatchError(ReproError, ValueError):
    """Two spatial objects defined on incompatible grids were combined."""


class CurveMismatchError(ReproError, ValueError):
    """Two objects linearized along different space-filling curves were combined."""


class CodecError(ReproError, ValueError):
    """A REGION/integer codec was asked to encode or decode invalid data."""


class StorageError(ReproError):
    """Base class for storage-engine failures."""


class AllocationError(StorageError):
    """The buddy allocator could not satisfy a request."""


class LongFieldError(StorageError):
    """An operation referenced a missing or invalid long field."""


class DatabaseError(ReproError):
    """Base class for relational-engine failures."""


class SqlSyntaxError(DatabaseError, ValueError):
    """The SQL text could not be parsed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SqlTypeError(DatabaseError, TypeError):
    """An expression was applied to values of the wrong SQL type."""


class CatalogError(DatabaseError, KeyError):
    """A table, column, or function referenced in a query does not exist."""


class ExecutionError(DatabaseError, RuntimeError):
    """A query plan failed during execution."""


class MedicalError(ReproError):
    """Base class for medical-layer failures (load pipeline, server)."""


class RegistrationError(MedicalError, RuntimeError):
    """Affine registration between patient and atlas space failed."""
