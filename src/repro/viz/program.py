"""DX visual programs: declarative visualization pipelines (Figure 5).

The paper's front end is "a DX 'visual program' which accepts the user's
query specifications through entry fields and renders the result" — a
dataflow of modules, "typically hidden from the user".  This module is
that dataflow: a :class:`VisualProgram` is an ordered list of steps
applied to a running :class:`~repro.core.system.QbismSystem`; the first
step issues the database query (through ImportVolume), later steps
post-process the imported data (band filter, restrict, cutting plane,
viewpoint), and sinks render or export.

Programs are plain data — they serialize to/from dicts, so a front end
could store and replay sessions, exactly how DX programs were shipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import ReproError
from repro.medical.server import QuerySpec

__all__ = ["VisualProgram", "ProgramState", "Step", "STEP_TYPES"]


class ProgramError(ReproError, ValueError):
    """A visual program was malformed or applied out of order."""


@dataclass
class ProgramState:
    """What flows between steps: the current data, images, and timings."""

    data: "object | None" = None  # DataRegion
    images: dict[str, np.ndarray] = field(default_factory=dict)
    outputs: list[Path] = field(default_factory=list)
    query_outcome: "object | None" = None  # QueryOutcome

    def require_data(self, step_name: str):
        """The current data object, raising if no query step ran yet."""
        if self.data is None:
            raise ProgramError(f"step {step_name!r} needs data; run a query step first")
        return self.data


@dataclass(frozen=True)
class Step:
    """One module instance: a type name plus its parameters."""

    type: str
    params: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Serialize to a plain dict (``type`` plus parameters)."""
        return {"type": self.type, **self.params}

    @classmethod
    def from_dict(cls, spec: dict) -> "Step":
        """Rebuild a step from its dict form."""
        spec = dict(spec)
        try:
            type_name = spec.pop("type")
        except KeyError:
            raise ProgramError("step specification needs a 'type'") from None
        return cls(type_name, spec)


# ---------------------------------------------------------------------- #
# step implementations: fn(system, state, **params) -> None
# ---------------------------------------------------------------------- #


def _step_query(system, state: ProgramState, **params) -> None:
    spec = QuerySpec(
        study_id=params["study_id"],
        atlas_name=params.get("atlas_name", "Talairach"),
        structures=tuple(params.get("structures", ())),
        intensity_range=tuple(params["intensity_range"]) if params.get("intensity_range") else None,
        box=(tuple(params["box"][0]), tuple(params["box"][1])) if params.get("box") else None,
    )
    outcome = system.query(spec, render_mode=None)
    state.query_outcome = outcome
    state.data = outcome.data


def _step_band(system, state: ProgramState, low: int, high: int) -> None:
    state.data = state.require_data("band").band(low, high)


def _step_restrict(system, state: ProgramState, structure: str) -> None:
    region = system.phantom.structure(structure)
    state.data = state.require_data("restrict").restrict(region)


def _step_render(system, state: ProgramState, mode: str = "mip", axis: int = 2,
                 name: str = "image") -> None:
    from repro.viz import render_mip, render_slice, render_surface, render_textured_surface

    data = state.require_data("render")
    renderers = {
        "mip": lambda: render_mip(data, axis=axis),
        "slice": lambda: render_slice(data, axis=axis),
        "surface": lambda: render_surface(data.region, axis=axis),
        "textured": lambda: render_textured_surface(data.region, data, axis=axis),
    }
    try:
        state.images[name] = renderers[mode]()
    except KeyError:
        raise ProgramError(f"unknown render mode {mode!r}") from None


def _step_rotate(system, state: ProgramState, angle: float, axis: int = 2,
                 name: str = "image") -> None:
    from repro.viz import render_rotated_mip

    state.images[name] = render_rotated_mip(state.require_data("rotate"), angle, axis=axis)


def _step_export(system, state: ProgramState, path: str, name: str = "image") -> None:
    from repro.viz import to_pgm

    try:
        image = state.images[name]
    except KeyError:
        raise ProgramError(f"no rendered image named {name!r} to export") from None
    state.outputs.append(to_pgm(image, path))


def _step_statistics(system, state: ProgramState, name: str = "stats") -> None:
    data = state.require_data("statistics")
    state.images[name] = np.asarray(
        [data.voxel_count, float(data.min() or 0), float(data.max() or 0)]
    )


STEP_TYPES = {
    "query": _step_query,
    "band": _step_band,
    "restrict": _step_restrict,
    "render": _step_render,
    "rotate": _step_rotate,
    "export": _step_export,
    "statistics": _step_statistics,
}


@dataclass
class VisualProgram:
    """An executable pipeline of steps."""

    steps: list[Step] = field(default_factory=list)

    # builder API ------------------------------------------------------- #

    def query(self, study_id: int, **kwargs) -> "VisualProgram":
        """Append a query step fetching one study's volume."""
        self.steps.append(Step("query", {"study_id": study_id, **kwargs}))
        return self

    def band(self, low: int, high: int) -> "VisualProgram":
        """Append an intensity-band filter step."""
        self.steps.append(Step("band", {"low": low, "high": high}))
        return self

    def restrict(self, structure: str) -> "VisualProgram":
        """Append a restrict-to-structure step."""
        self.steps.append(Step("restrict", {"structure": structure}))
        return self

    def render(self, mode: str = "mip", axis: int = 2, name: str = "image") -> "VisualProgram":
        """Append a render step producing a named image."""
        self.steps.append(Step("render", {"mode": mode, "axis": axis, "name": name}))
        return self

    def rotate(self, angle: float, axis: int = 2, name: str = "image") -> "VisualProgram":
        """Append a rotate-and-render step."""
        self.steps.append(Step("rotate", {"angle": angle, "axis": axis, "name": name}))
        return self

    def export(self, path: str, name: str = "image") -> "VisualProgram":
        """Append an export-image step."""
        self.steps.append(Step("export", {"path": str(path), "name": name}))
        return self

    # execution ---------------------------------------------------------- #

    def run(self, system) -> ProgramState:
        """Apply every step in order; returns the final state."""
        state = ProgramState()
        for step in self.steps:
            try:
                fn = STEP_TYPES[step.type]
            except KeyError:
                known = ", ".join(sorted(STEP_TYPES))
                raise ProgramError(
                    f"unknown step type {step.type!r}; known: {known}"
                ) from None
            fn(system, state, **step.params)
        return state

    # serialization ------------------------------------------------------ #

    def to_dicts(self) -> list[dict]:
        """Serialize every step (see :meth:`Step.to_dict`)."""
        return [step.to_dict() for step in self.steps]

    @classmethod
    def from_dicts(cls, specs: list[dict]) -> "VisualProgram":
        """Rebuild a program from serialized steps."""
        return cls([Step.from_dict(spec) for spec in specs])

    def __len__(self) -> int:
        return len(self.steps)
