"""Triangular surface meshes for atlas structures.

The *Atlas Structure* entity stores, next to the volumetric REGION, "a
triangular mesh representing the surface of the structure to support faster
rendering" (§3.3).  This module extracts that mesh: every face of an
occupied voxel that borders an unoccupied voxel contributes two triangles.
The mesh serializes to a long-field payload so the loader can store it in
the ``surfaceMesh`` column.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.errors import CodecError, ValidationError
from repro.regions import Region

__all__ = ["TriangleMesh", "extract_surface_mesh"]

MESH_MAGIC = b"MSH1"
_HEADER = struct.Struct("<4sII")  # magic, vertex count, triangle count

# The 4 corner offsets of each of the 6 voxel faces (unit cube corners),
# ordered so both triangles of a face share the diagonal (0, 2).
_FACE_CORNERS = {
    (-1, 0, 0): ((0, 0, 0), (0, 1, 0), (0, 1, 1), (0, 0, 1)),
    (+1, 0, 0): ((1, 0, 0), (1, 0, 1), (1, 1, 1), (1, 1, 0)),
    (0, -1, 0): ((0, 0, 0), (0, 0, 1), (1, 0, 1), (1, 0, 0)),
    (0, +1, 0): ((0, 1, 0), (1, 1, 0), (1, 1, 1), (0, 1, 1)),
    (0, 0, -1): ((0, 0, 0), (1, 0, 0), (1, 1, 0), (0, 1, 0)),
    (0, 0, +1): ((0, 0, 1), (0, 1, 1), (1, 1, 1), (1, 0, 1)),
}


@dataclass(frozen=True)
class TriangleMesh:
    """Indexed triangle mesh: ``vertices`` (n, 3) float32, ``triangles`` (m, 3) int32."""

    vertices: np.ndarray
    triangles: np.ndarray

    @property
    def vertex_count(self) -> int:
        """Number of vertices."""
        return int(self.vertices.shape[0])

    @property
    def triangle_count(self) -> int:
        """Number of triangles."""
        return int(self.triangles.shape[0])

    def surface_area(self) -> float:
        """Total area; for a voxel surface this equals the exposed face count."""
        a = self.vertices[self.triangles[:, 0]]
        b = self.vertices[self.triangles[:, 1]]
        c = self.vertices[self.triangles[:, 2]]
        cross = np.cross(b - a, c - a)
        return float(0.5 * np.linalg.norm(cross, axis=1).sum())

    def to_bytes(self) -> bytes:
        """Serialize to the surfaceMesh long-field layout."""
        header = _HEADER.pack(MESH_MAGIC, self.vertex_count, self.triangle_count)
        return (
            header
            + self.vertices.astype("<f4").tobytes()
            + self.triangles.astype("<i4").tobytes()
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "TriangleMesh":
        """Deserialize a payload produced by :meth:`to_bytes`."""
        if len(data) < _HEADER.size or data[:4] != MESH_MAGIC:
            raise CodecError("not a serialized mesh (bad magic)")
        _, nv, nt = _HEADER.unpack_from(data)
        offset = _HEADER.size
        vertices = np.frombuffer(data, dtype="<f4", count=nv * 3, offset=offset).reshape(nv, 3)
        offset += nv * 12
        triangles = np.frombuffer(data, dtype="<i4", count=nt * 3, offset=offset).reshape(nt, 3)
        return cls(vertices.copy(), triangles.copy())

    def __repr__(self) -> str:
        return f"TriangleMesh({self.vertex_count} vertices, {self.triangle_count} triangles)"


def extract_surface_mesh(region: Region) -> TriangleMesh:
    """Boundary-face mesh of a 3-D REGION (two triangles per exposed face)."""
    if region.grid.ndim != 3:
        raise ValidationError("surface meshes are defined for 3-D regions")
    mask = region.to_mask()
    padded = np.pad(mask, 1, constant_values=False)
    corner_chunks: list[np.ndarray] = []
    for normal, corners in _FACE_CORNERS.items():
        inner = padded[1:-1, 1:-1, 1:-1]
        neighbor = padded[
            1 + normal[0]: padded.shape[0] - 1 + normal[0],
            1 + normal[1]: padded.shape[1] - 1 + normal[1],
            1 + normal[2]: padded.shape[2] - 1 + normal[2],
        ]
        exposed = np.argwhere(inner & ~neighbor)
        if not exposed.size:
            continue
        offsets = np.asarray(corners, dtype=np.int64)  # (4, 3)
        corner_chunks.append(exposed[:, None, :] + offsets[None, :, :])
    if not corner_chunks:
        return TriangleMesh(
            np.empty((0, 3), dtype=np.float32), np.empty((0, 3), dtype=np.int32)
        )
    face_corners = np.concatenate(corner_chunks)  # (faces, 4, 3)
    flat = face_corners.reshape(-1, 3)
    vertices, inverse = np.unique(flat, axis=0, return_inverse=True)
    quads = inverse.reshape(-1, 4)
    triangles = np.concatenate([quads[:, (0, 1, 2)], quads[:, (0, 2, 3)]])
    return TriangleMesh(vertices.astype(np.float32), triangles.astype(np.int32))
