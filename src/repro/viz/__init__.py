"""Visualization substrate: rendering, surface meshes, the DX stand-in."""

from __future__ import annotations

from repro.viz.dx import DataExplorer, DXObject
from repro.viz.mesh import TriangleMesh, extract_surface_mesh
from repro.viz.program import ProgramState, Step, VisualProgram
from repro.viz.render import (
    render_mip,
    render_rotated_mip,
    render_slice,
    render_surface,
    render_textured_surface,
    render_turntable,
    to_pgm,
)

__all__ = [
    "DataExplorer",
    "DXObject",
    "VisualProgram",
    "ProgramState",
    "Step",
    "TriangleMesh",
    "extract_surface_mesh",
    "render_mip",
    "render_rotated_mip",
    "render_turntable",
    "render_slice",
    "render_surface",
    "render_textured_surface",
    "to_pgm",
]
