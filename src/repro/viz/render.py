"""Software rendering of query results.

The paper's DX front end renders "just the anatomical data, just the
intensity data, both together, or a solid-textured mapping of the intensity
data onto the surfaces of the structures" (§5.2, Figure 6).  This module
implements those modes with small orthographic projections over dense
numpy arrays:

* :func:`render_mip` — maximum-intensity projection of a DATA_REGION
* :func:`render_slice` — one axis-aligned cutting plane
* :func:`render_surface` — depth-shaded first-hit surface of a REGION
* :func:`render_textured_surface` — surface shaded by study data (Fig. 6c)

Images are float arrays in [0, 1]; :func:`to_pgm` writes them to disk so
the examples can dump actual pictures.
"""

from __future__ import annotations

from repro.errors import ValidationError

from pathlib import Path

import numpy as np

from repro.regions import Region
from repro.volumes import DataRegion

__all__ = [
    "render_mip",
    "render_rotated_mip",
    "render_turntable",
    "render_slice",
    "render_surface",
    "render_textured_surface",
    "to_pgm",
]


def _normalize(image: np.ndarray) -> np.ndarray:
    image = image.astype(np.float64)
    low, high = float(image.min()), float(image.max())
    if high <= low:
        return np.zeros_like(image)
    return (image - low) / (high - low)


def _dense(data: DataRegion) -> np.ndarray:
    return data.to_array(fill=0).astype(np.float64)


def _check_axis(axis: int, ndim: int) -> None:
    if not 0 <= axis < ndim:
        raise ValidationError(f"axis {axis} out of range for {ndim}-D data")


def render_mip(data: DataRegion, axis: int = 2) -> np.ndarray:
    """Maximum-intensity projection along one axis (the classic PET view)."""
    _check_axis(axis, data.region.grid.ndim)
    return _normalize(_dense(data).max(axis=axis))


def render_rotated_mip(data: DataRegion, angle_deg: float, axis: int = 2) -> np.ndarray:
    """MIP after rotating the scene about ``axis`` — the §5.2 "change the
    viewpoint" interaction.

    The dense field is rotated in the plane perpendicular to ``axis`` with
    trilinear interpolation, then projected.  ``angle_deg = 0`` reduces to
    :func:`render_mip` up to interpolation noise.
    """
    from scipy import ndimage

    _check_axis(axis, data.region.grid.ndim)
    dense = _dense(data)
    if data.region.grid.ndim != 3:
        raise ValidationError("rotated MIP is defined for 3-D data")
    plane_axes = tuple(i for i in range(3) if i != axis)
    rotated = ndimage.rotate(
        dense, angle_deg, axes=plane_axes, reshape=False, order=1, mode="constant"
    )
    return _normalize(rotated.max(axis=axis))


def render_turntable(data: DataRegion, frames: int = 8, axis: int = 2) -> list[np.ndarray]:
    """An animation: MIP frames at evenly spaced viewpoints (§5.2
    "generating an animation")."""
    if frames < 1:
        raise ValidationError("animation needs at least one frame")
    return [
        render_rotated_mip(data, 360.0 * i / frames, axis=axis) for i in range(frames)
    ]


def render_slice(data: DataRegion, axis: int = 2, index: int | None = None) -> np.ndarray:
    """One cutting plane through the data (the DX "cutting plane" module)."""
    grid = data.region.grid
    _check_axis(axis, grid.ndim)
    if index is None:
        index = grid.shape[axis] // 2
    if not 0 <= index < grid.shape[axis]:
        raise ValidationError(f"slice index {index} out of range")
    return _normalize(np.take(_dense(data), index, axis=axis))


def render_surface(region: Region, axis: int = 2) -> np.ndarray:
    """Depth-shaded first-hit rendering of a REGION's surface.

    Rays march along ``axis``; the first occupied voxel sets the pixel's
    depth, shaded so nearer surfaces are brighter (Figure 6a).
    """
    grid = region.grid
    _check_axis(axis, grid.ndim)
    mask = region.to_mask()
    depth_size = grid.shape[axis]
    hit = mask.any(axis=axis)
    first = mask.argmax(axis=axis)  # index of first True along the ray
    image = np.zeros(hit.shape, dtype=np.float64)
    # Near surfaces (small first-hit index) render brighter.
    image[hit] = 1.0 - first[hit] / max(depth_size, 1)
    return image


def render_textured_surface(region: Region, data: DataRegion, axis: int = 2) -> np.ndarray:
    """Surface of ``region`` colored by the study values of ``data`` (Fig. 6c).

    Where a ray hits the structure, the pixel takes the data value at the
    hit voxel (0 where the structure has no data there), modulated by a
    mild depth shade so the 3-D shape stays readable.
    """
    grid = region.grid
    _check_axis(axis, grid.ndim)
    mask = region.to_mask()
    dense = data.to_array(fill=0).astype(np.float64)
    hit = mask.any(axis=axis)
    first = mask.argmax(axis=axis)
    texture = np.take_along_axis(
        dense, np.expand_dims(first, axis=axis), axis=axis
    ).squeeze(axis=axis)
    depth_shade = 0.5 + 0.5 * (1.0 - first / max(grid.shape[axis], 1))
    image = np.zeros(hit.shape, dtype=np.float64)
    image[hit] = texture[hit] * depth_shade[hit]
    return _normalize(image)


def to_pgm(image: np.ndarray, path: str | Path) -> Path:
    """Write a [0, 1] float image as a binary PGM file; returns the path."""
    if image.ndim != 2:
        raise ValidationError("PGM export needs a 2-D image")
    path = Path(path)
    pixels = np.clip(np.asarray(image, dtype=np.float64), 0.0, 1.0)
    data = (pixels * 255).astype(np.uint8)
    header = f"P5\n{image.shape[1]} {image.shape[0]}\n255\n".encode("ascii")
    path.write_bytes(header + data.tobytes())
    return path
