"""The visualization front end: a stand-in for IBM Data Explorer/6000.

Reproduces the pieces of DX that matter to the paper's evaluation:

* **ImportVolume** (§5.2) — the module the authors added to the DX
  executive: it takes the serialized, spatially restricted query result off
  the wire and turns it into a renderable object.
* **the result cache** — "because of the caching mechanism built into DX,
  the user can quickly review ... recently issued queries without
  necessitating a database reaccess"; the experiments flush it per run.
* **rendering** — real images via :mod:`repro.viz.render`, with elapsed
  time modeled by the calibrated cost model.
"""

from __future__ import annotations

from repro.errors import ValidationError

from dataclasses import dataclass

import numpy as np

from repro.net.costmodel import CostModel1994
from repro.obs import metrics, trace
from repro.viz import render
from repro.volumes import DataRegion

__all__ = ["DXObject", "DataExplorer"]


@dataclass
class DXObject:
    """A query result imported into the visualization environment."""

    data: DataRegion
    import_cpu_seconds: float
    import_real_seconds: float

    @property
    def voxel_count(self) -> int:
        """Number of voxels carried by the object."""
        return self.data.voxel_count


class DataExplorer:
    """Import, cache, and render query results."""

    def __init__(self, cost_model: CostModel1994 | None = None):
        self.cost_model = cost_model or CostModel1994()
        self._cache: dict[str, DXObject] = {}
        self.imports = 0
        self.cache_hits = 0

    # ------------------------------------------------------------------ #
    # ImportVolume
    # ------------------------------------------------------------------ #

    def import_volume(self, payload: bytes, cache_key: str | None = None) -> DXObject:
        """Convert a serialized DATA_REGION payload into a DX object.

        With a ``cache_key``, a repeated query returns the cached object
        without re-importing (and without a database re-access upstream).
        """
        if cache_key is not None and cache_key in self._cache:
            self.cache_hits += 1
            metrics.counter("dx.cache_hits").inc()
            return self._cache[cache_key]
        with trace.span("dx.import", bytes=len(payload)) as sp:
            data = DataRegion.from_bytes(payload)
            cpu = self.cost_model.import_cpu_seconds(
                data.voxel_count, data.region.run_count
            )
            real = self.cost_model.import_real_seconds(
                data.voxel_count, data.region.run_count
            )
            sp.set_sim_seconds(real)
            obj = DXObject(
                data=data,
                import_cpu_seconds=cpu,
                import_real_seconds=real,
            )
        self.imports += 1
        metrics.counter("dx.imports").inc()
        if cache_key is not None:
            self._cache[cache_key] = obj
        return obj

    def flush_cache(self) -> None:
        """What the experiments do before every timed run (§6.1)."""
        self._cache.clear()

    @property
    def cache_size(self) -> int:
        """Number of objects currently cached."""
        return len(self._cache)

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #

    def render(self, obj: DXObject, mode: str = "mip", axis: int = 2) -> tuple[np.ndarray, float]:
        """Render an imported object; returns ``(image, modeled_seconds)``.

        Modes: ``mip`` (intensity projection), ``slice`` (cutting plane),
        ``surface`` (structure only), ``textured`` (data mapped onto the
        structure surface — Figure 6c).
        """
        with trace.span("dx.render", mode=mode) as sp:
            if mode == "mip":
                image = render.render_mip(obj.data, axis=axis)
            elif mode == "slice":
                image = render.render_slice(obj.data, axis=axis)
            elif mode == "surface":
                image = render.render_surface(obj.data.region, axis=axis)
            elif mode == "textured":
                image = render.render_textured_surface(
                    obj.data.region, obj.data, axis=axis
                )
            else:
                raise ValidationError(f"unknown render mode {mode!r}")
            seconds = self.cost_model.render_seconds(obj.voxel_count)
            sp.set_sim_seconds(seconds)
        metrics.counter("dx.renders").inc()
        return image, seconds
