#!/usr/bin/env python3
"""Cohort queries, spatial indexing, and persistence — the system extensions.

Demonstrates the features this reproduction adds around the paper's core:

1. the §1 flagship cohort query ("PET studies of women aged 30-60 with
   high activity in the hippocampus") via `find_studies`,
2. relational hash indexes and their effect on rows scanned,
3. the §7 spatial index: locating structures a probe box intersects,
4. saving the whole database to disk and reopening it.

Run:  python examples/cohort_and_persistence.py [save_dir]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.core import QbismSystem
from repro.medical import MedicalLoader


def main() -> None:
    save_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp()) / "qbism"

    print("Building the database (64^3 atlas, 5 PET studies)...")
    system = QbismSystem.build_demo(seed=11, grid_side=64, n_pet=5, n_mri=0)

    # -- 1. the cohort query --------------------------------------------- #
    print("\n[1] PET studies of women aged 30-60 with hippocampal activity > 120:")
    result = system.server.find_studies(
        "hippocampus_l", min_mean_intensity=120.0, sex="F", min_age=30, max_age=60
    )
    if result.rows:
        for study_id, name, age, sex, mean in result.rows:
            print(f"    study {study_id}: {name} ({sex}, {age}) — mean {mean:.1f}")
    else:
        print("    (no study matches; relaxing the demographic filter)")
        for study_id, name, age, sex, mean in system.server.find_studies(
            "hippocampus_l", 0.0
        ).rows:
            print(f"    study {study_id}: {name} ({sex}, {age}) — mean {mean:.1f}")
    print("    the whole filter ran inside the DBMS: joins + dataMean(extractVoxels(...))")

    # -- 2. relational indexes ------------------------------------------- #
    print("\n[2] Hash indexes on the join columns:")
    sql = (
        "select count(*) from warpedVolume wv, intensityBand b "
        "where wv.studyId = b.studyId and b.encoding = 'hilbert-naive'"
    )
    before = system.db.execute(sql)
    loader = MedicalLoader(system.db, system.lfm)
    loader.create_standard_indexes()
    after = system.db.execute(sql)
    print(f"    rows scanned for a study-band join: "
          f"{before.work.rows_scanned} -> {after.work.rows_scanned}")
    print("    " + system.db.explain(sql).splitlines()[1].strip())

    # -- 3. the spatial index -------------------------------------------- #
    print("\n[3] Which structures does a biopsy probe box intersect?")
    box = ((18, 18, 16), (30, 30, 26))
    names, indexed = system.server.structures_intersecting_box(*box)
    _, naive = system.server.structures_intersecting_box(*box, use_index=False)
    print(f"    box {box[0]}..{box[1]} hits: {', '.join(names)}")
    print(f"    page I/Os with bounding-box prefilter: {indexed.io.pages_read}; "
          f"without: {naive.io.pages_read}")

    # -- 4. persistence ---------------------------------------------------- #
    print(f"\n[4] Saving the database to {save_dir} and reopening it...")
    system.save(save_dir)
    reopened = QbismSystem.load(save_dir)
    outcome = reopened.query_structure(reopened.pet_study_ids[0], "thalamus",
                                       render_mode=None)
    print(f"    reopened system answers queries: thalamus has "
          f"{outcome.data.voxel_count} voxels, mean {outcome.data.mean():.1f}")
    print(f"    on-disk size: "
          f"{sum(f.stat().st_size for f in save_dir.iterdir()) >> 20} MiB")


if __name__ == "__main__":
    main()
