#!/usr/bin/env python3
"""The §2.1 scenario: an interactive brain-mapping session, step by step.

Reproduces the sample session the paper motivates — each step is one
database query, and every image the DX front end would show is written out
as a PGM file so you can open the results:

1. select a set of structures from the atlas and render them,
2. texture-map a patient's PET study onto a structure's surface,
3. histogram-segment the intensity range and find other regions in range,
4. compare a region against the same region of another PET study,
5. simulate targeting a beam and list the structures it intersects,
6. compare one study against its demographic subpopulation.

Run:  python examples/brain_mapping_session.py [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

from repro.core import QbismSystem, QuerySpec
from repro.regions import rasterize
from repro.viz import render_surface, render_textured_surface, to_pgm


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("session_output")
    out_dir.mkdir(exist_ok=True)

    print("Loading the database (64^3 atlas, 4 PET studies)...")
    system = QbismSystem.build_demo(seed=7, grid_side=64, n_pet=4, n_mri=0)
    study, other_study = system.pet_study_ids[:2]
    grid = system.phantom.grid

    # -- Step 1: render structures of a neural system ------------------- #
    print("\n[1] Structures of the 'motor' system, rendered from the atlas")
    rows = system.db.execute(
        """
        select ns.structureName
        from neuralSystem sy, systemStructure ss, neuralStructure ns
        where sy.systemName = 'motor' and sy.systemId = ss.systemId
              and ss.structureId = ns.structureId
        order by ns.structureName
        """
    )
    motor = [name for (name,) in rows]
    print(f"    members: {', '.join(motor)}")
    scene = system.phantom.structures[motor[0]]
    for name in motor[1:]:
        scene = scene.union(system.phantom.structures[name])
    path = to_pgm(render_surface(scene, axis=2), out_dir / "step1_motor_system.pgm")
    print(f"    wrote {path}")

    # -- Step 2: texture-map the PET study onto a structure ------------- #
    print("\n[2] PET data mapped onto the hemisphere surface (Figure 6c)")
    outcome = system.query_structure(study, "ntal1", render_mode="textured")
    path = to_pgm(outcome.image, out_dir / "step2_textured_hemisphere.pgm")
    print(f"    {outcome.data.voxel_count} voxels extracted; wrote {path}")

    # -- Step 3: histogram segmentation + in-range regions -------------- #
    print("\n[3] Histogram of the study, then every region in the hot band")
    full = system.query_full_study(study, render_mode=None)
    counts, edges = full.data.histogram(bins=8, value_range=(0, 256))
    for count, lo in zip(counts, edges[:-1]):
        bar = "#" * int(60 * count / counts.max())
        print(f"    {int(lo):>4}..{int(lo) + 31:<4} {count:>8}  {bar}")
    hot = system.query_band(study, 224, 255, render_mode=None)
    print(f"    hot band 224-255: {hot.data.voxel_count} voxels "
          f"in {hot.data.region.run_count} runs")

    # -- Step 4: compare a region across two studies -------------------- #
    print("\n[4] Same structure, two studies: mean activity in the thalamus")
    a = system.query_structure(study, "thalamus", render_mode=None)
    b = system.query_structure(other_study, "thalamus", render_mode=None)
    print(f"    study {study}: mean {a.data.mean():.1f}; "
          f"study {other_study}: mean {b.data.mean():.1f}")
    diff = a.data.values.astype(float) - b.data.values.astype(float)
    print(f"    voxel-wise |difference|: mean {np.abs(diff).mean():.1f}, "
          f"max {np.abs(diff).max():.0f}")

    # -- Step 5: beam targeting ----------------------------------------- #
    print("\n[5] Targeting a beam at the thalamus: which structures does it cross?")
    target = system.phantom.structures["thalamus"].centroid()
    beam = rasterize.cylinder(grid, (0.0, 0.0, target[2]),
                              (target[0], target[1], 0.0), radius=1.5)
    hits = []
    for name, region in sorted(system.phantom.structures.items()):
        overlap = beam.intersection(region).voxel_count
        if overlap:
            hits.append(f"{name} ({overlap} voxels)")
    print("    " + ("; ".join(hits) if hits else "no structures intersected"))
    path = to_pgm(render_surface(beam.union(scene), axis=2), out_dir / "step5_beam.pgm")
    print(f"    wrote {path}")

    # -- Step 6: compare with a subpopulation ---------------------------- #
    print("\n[6] The study against its subpopulation: voxel-wise average")
    mean_data, _ = system.server.average_in_structure(
        system.pet_study_ids, "thalamus"
    )
    subject = a.data.values.astype(float)
    z = (subject - mean_data.values) / (mean_data.values.std() + 1e-9)
    print(f"    subject-vs-population z-score: mean {z.mean():+.2f}, "
          f"extremes {z.min():+.2f}..{z.max():+.2f}")

    print(f"\nSession images are in {out_dir}/")


if __name__ == "__main__":
    main()
