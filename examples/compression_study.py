#!/usr/bin/env python3
"""The §4 physical-design study on your own machine.

Walks through the paper's representation analysis for one anatomical
structure and one intensity band: run counts under both curves, octant
decompositions, delta statistics (power-law fit, entropy bound), and the
size of every REGION codec — ending with the Figure 4-style ratio line.

Run:  python examples/compression_study.py
"""

from __future__ import annotations

import numpy as np

from repro.compression import (
    delta_lengths,
    entropy_bound_bytes,
    fit_power_law,
    get_codec,
)
from repro.regions import Region
from repro.synthdata import build_phantom
from repro.volumes import Volume, uniform_bands


def analyze(name: str, region: Region) -> dict[str, float]:
    z_region = region.reorder("morton")
    print(f"\n--- {name}: {region.voxel_count} voxels ---")
    print(f"  h-runs: {region.run_count}   z-runs: {z_region.run_count}   "
          f"(z excess {z_region.run_count / region.run_count - 1:+.0%})")
    oblong = z_region.oblong_octants()[0].size
    octants = z_region.octants()[0].size
    print(f"  oblong octants: {oblong}   regular octants: {octants}")

    lengths = delta_lengths(region.intervals)
    fit = fit_power_law(lengths)
    print(f"  deltas: {lengths.size}; power-law exponent a = {fit.exponent:.2f} "
          f"(r^2 = {fit.r_squared:.2f}; paper: 1.5-1.7)")

    sizes = {
        "entropy": entropy_bound_bytes(region.intervals),
        "elias": get_codec("elias").encoded_size(region.intervals),
        "naive": get_codec("naive").encoded_size(region.intervals),
        "oblong": get_codec("oblong").encoded_size(z_region.intervals, ndim=3),
        "octant": get_codec("octant").encoded_size(z_region.intervals, ndim=3),
    }
    for method, size in sizes.items():
        print(f"  {method:>8}: {size:>10.0f} bytes "
              f"({size / sizes['entropy']:.2f}x the entropy bound)")
    return sizes


def main() -> None:
    print("Building the phantom atlas and one synthetic PET volume (64^3)...")
    phantom = build_phantom(grid_side=64, seed=3)
    from repro.synthdata import generate_pet_studies
    from repro.medical import resample_to_grid

    study = generate_pet_studies(phantom, count=1, seed=4)[0]
    warped = resample_to_grid(study.data, study.patient_to_atlas, phantom.grid)
    volume = Volume.from_array(warped)

    totals: dict[str, float] = {}
    structure_sizes = analyze("structure ntal1", phantom.structures["ntal1"])
    band = next(b for b in uniform_bands(volume) if b.low == 96)
    band_sizes = analyze(f"intensity band {band.label}", band.region)

    for sizes in (structure_sizes, band_sizes):
        for method, size in sizes.items():
            totals[method] = totals.get(method, 0.0) + size

    base = totals["entropy"]
    ratio = " : ".join(f"{totals[m] / base:.2f}" for m in
                       ("entropy", "elias", "naive", "oblong", "octant"))
    print(f"\nCombined ratios (entropy : elias : naive : oblong : octant)")
    print(f"  measured: {ratio}")
    print(f"  paper:    1.00 : 1.17 : 9.50 : 10.40 : 17.80")

    # Round-trip sanity: every codec decodes to the identical region.
    for codec_name in ("naive", "elias", "octant", "oblong"):
        codec = get_codec(codec_name)
        source = band.region.reorder("morton") if codec_name in ("octant", "oblong") else band.region
        assert codec.decode(codec.encode(source.intervals, ndim=3)) == source.intervals
    print("\nAll codecs verified lossless on these regions.")


if __name__ == "__main__":
    main()
