#!/usr/bin/env python3
"""DX visual programs: build, run, serialize, and replay a pipeline.

The paper's user interface is a DX "visual program" — a dataflow of
modules the user never sees (Figure 5, lower-left window).  This example
authors one programmatically: query a study, keep the hot voxels inside
the hemisphere, render three views (front MIP, rotated MIP, textured
surface), and export them; then serializes the program to plain dicts and
replays it, the way DX programs were saved and shipped.

Run:  python examples/visual_program.py [output_dir]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.core import QbismSystem
from repro.viz import VisualProgram


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("program_output")
    out_dir.mkdir(exist_ok=True)

    print("Building the database (64^3, 2 PET studies)...")
    system = QbismSystem.build_demo(seed=21, grid_side=64, n_pet=2, n_mri=0)
    study = system.pet_study_ids[0]

    program = (
        VisualProgram()
        .query(study, structures=["ntal1"])
        .band(128, 255)
        .render(mode="mip", name="front")
        .rotate(60.0, name="oblique")
        .render(mode="textured", name="shaded")
        .export(out_dir / "front.pgm", name="front")
        .export(out_dir / "oblique.pgm", name="oblique")
        .export(out_dir / "shaded.pgm", name="shaded")
    )
    print(f"Program has {len(program)} steps; running...")
    state = program.run(system)
    print(f"  extracted {state.data.voxel_count} voxels "
          f"({state.query_outcome.timing.lfm_page_ios} page I/Os)")
    for path in state.outputs:
        print(f"  wrote {path}")

    # Serialize, pretty-print, and replay — byte-identical images.
    serialized = json.dumps(program.to_dicts(), indent=2, default=str)
    print("\nThe program as shippable JSON:")
    print(serialized)
    replayed = VisualProgram.from_dicts(json.loads(serialized))
    replay_state = replayed.run(system)
    identical = all(
        (replay_state.images[name] == state.images[name]).all()
        for name in state.images
    )
    print(f"\nReplay produced identical images: {identical}")


if __name__ == "__main__":
    main()
