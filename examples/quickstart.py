#!/usr/bin/env python3
"""Quickstart: build a small QBISM system and run the paper's query classes.

Builds a synthetic brain database (atlas + PET/MRI studies, warped and
banded at load time), then walks through one query of each class from §6.2
— simple, spatial, attribute, mixed — printing the Table 3-style timing
breakdown for each.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import QbismSystem, format_table3


def main() -> None:
    print("Building a demo QBISM system (64^3 atlas, 3 PET + 1 MRI studies)...")
    system = QbismSystem.build_demo(seed=1994, grid_side=64, n_pet=3, n_mri=1)
    print(f"  {system}")
    print(f"  structures: {', '.join(sorted(system.structure_names()))}")
    print(f"  long fields stored: {system.lfm.field_count} "
          f"({system.lfm.stored_bytes >> 20} MiB logical)\n")

    study = system.pet_study_ids[0]

    print("Running one query from each of the paper's classes (§6.2):")
    outcomes = [
        system.query_full_study(study, label="simple: entire study"),
        system.query_box(study, (16, 16, 16), (48, 48, 48), label="spatial: box probe"),
        system.query_structure(study, "ntal1", label="spatial: hemisphere"),
        system.query_band(study, 224, 255, label="attribute: band 224-255"),
        system.query_mixed(study, "ntal1", 192, 255, label="mixed: band in ntal1"),
    ]
    print(format_table3([o.timing for o in outcomes]))

    full, filtered = outcomes[0].timing, outcomes[-1].timing
    print(
        f"\nEarly filtering pays off: the full-study query moves "
        f"{full.net_messages} network messages and {full.lfm_page_ios} page I/Os; "
        f"the mixed query needs {filtered.net_messages} and {filtered.lfm_page_ios}."
    )

    print("\nThe SQL the MedicalServer generated for the mixed query:")
    for sql in outcomes[-1].result.sql:
        print("  " + "\n  ".join(sql.splitlines()))
        print()


if __name__ == "__main__":
    main()
