#!/usr/bin/env python3
"""Multi-study queries: Table 4 and the §6.4 population-average workload.

Demonstrates the queries that motivated QBISM's design for *growing*
databases: the n-way band-consistency intersection under three REGION
encodings (Table 4), an "in at least m of k studies" variant, and the
voxel-wise population average inside a structure — all pushed through the
DBMS with early spatial filtering.

Run:  python examples/population_study.py
"""

from __future__ import annotations

import numpy as np

from repro.core import QbismSystem, format_table4
from repro.regions import IntervalSet, Region


def main() -> None:
    print("Building the database (64^3 atlas, 5 PET studies, 3 encodings)...")
    system = QbismSystem.build_demo(
        seed=1994, grid_side=64, n_pet=5, n_mri=0,
        band_encodings=("hilbert-naive", "z-naive", "octant"),
    )
    studies = system.pet_study_ids

    # -- Table 4: the 5-way band intersection under each encoding ------- #
    print("\n[Table 4] REGION where all 5 studies are in band 128-159:")
    rows = []
    for encoding in ("hilbert-naive", "z-naive", "octant"):
        region, row = system.multi_study_band(studies, 128, 159, encoding)
        rows.append(row)
    print(format_table4(rows))
    print(f"  (paper: 446 / 593 / 664 I/Os — h-runs win, octants lose)")

    # -- "at least m of k": the sweep generalization -------------------- #
    print("\n[m-of-k] Voxels in band 128-159 in at least m of the 5 studies:")
    band_sets = []
    for sid in studies:
        handle = system.db.execute(
            "select region from intensityBand "
            "where studyId = ? and low = 128 and encoding = 'hilbert-naive'",
            [sid],
        ).scalar()
        band_sets.append(Region.from_bytes(system.lfm.read(handle)).intervals)
    for m in range(1, 6):
        combined = IntervalSet.sweep(band_sets, m)
        print(f"    m = {m}: {combined.count:>8} voxels in {combined.run_count} runs")

    # -- §6.4: the population average ------------------------------------ #
    print("\n[§6.4] Voxel-wise average inside the cerebellum over all studies:")
    mean_data, outcomes = system.server.average_in_structure(studies, "cerebellum")
    ios = sum(o.io.pages_read for o in outcomes)
    full_pages = system.atlas.resolution ** 3 // 4096 * len(studies)
    print(f"    {mean_data.voxel_count} voxels averaged over {len(studies)} studies")
    print(f"    population mean intensity: {mean_data.mean():.1f}")
    print(f"    page I/Os: {ios} (reading whole studies would cost ~{full_pages})")

    # Find the study that deviates most from the population.
    print("\n    per-study deviation from the population mean:")
    for sid, outcome in zip(studies, outcomes):
        deviation = float(
            np.abs(outcome.data.values.astype(np.float64) - mean_data.values).mean()
        )
        print(f"      study {sid}: mean |dev| = {deviation:.2f}")

    print("\nThe reduction in data traffic is linear in the number of studies —")
    print("exactly the scaling argument of the paper's §6.4.")


if __name__ == "__main__":
    main()
