#!/usr/bin/env python3
"""An interactive SQL console over a loaded QBISM database.

Builds the demo database and drops you into a tiny REPL speaking the
engine's SQL dialect — including the spatial functions — so you can poke
at the paper's schema directly:

    qbism> select structureName, voxelCount(region)
           from neuralStructure ns, atlasStructure s
           where ns.structureId = s.structureId;

Meta-commands: .tables, .schema <table>, .explain <select>, .quit
Run:  python examples/sql_console.py        (or pipe a script into stdin)
"""

from __future__ import annotations

import sys

from repro.core import QbismSystem
from repro.errors import ReproError
from repro.storage import LongField


def format_value(value) -> str:
    if isinstance(value, bytes):
        return f"<{len(value)}-byte payload>"
    if isinstance(value, LongField):
        return f"<long field #{value.field_id}, {value.length} B>"
    if value is None:
        return "NULL"
    return str(value)


def print_result(result) -> None:
    if not result.columns:
        print(f"ok ({result.rowcount} rows affected)")
        return
    widths = [
        max(len(c), *(len(format_value(row[i])) for row in result.rows))
        if result.rows
        else len(c)
        for i, c in enumerate(result.columns)
    ]
    print("  ".join(c.ljust(w) for c, w in zip(result.columns, widths)))
    print("  ".join("-" * w for w in widths))
    for row in result.rows:
        print("  ".join(format_value(v).ljust(w) for v, w in zip(row, widths)))
    print(f"({len(result.rows)} rows; {result.io.pages_read if result.io else 0} page I/Os)")


def main() -> None:
    print("Building the demo database (32^3 for a fast start)...")
    system = QbismSystem.build_demo(seed=1994, grid_side=32, n_pet=3, n_mri=1)
    db = system.db
    print("Ready. Type SQL (end with ';'), or .tables / .schema t / .explain q / .quit\n")

    buffer: list[str] = []
    interactive = sys.stdin.isatty()
    while True:
        try:
            prompt = "qbism> " if not buffer else "   ...> "
            line = input(prompt if interactive else "")
        except EOFError:
            break
        stripped = line.strip()
        if not buffer and stripped.startswith("."):
            command, _, arg = stripped.partition(" ")
            if command == ".quit":
                break
            if command == ".tables":
                print("  ".join(db.table_names()))
            elif command == ".schema":
                try:
                    schema = db.catalog.table(arg.strip()).schema
                    for col in schema.columns:
                        print(f"  {col.name:<16} {col.sql_type.value}")
                except ReproError as exc:
                    print(f"error: {exc}")
            elif command == ".explain":
                try:
                    print(db.explain(arg))
                except (ReproError, ValueError) as exc:
                    print(f"error: {exc}")
            else:
                print(f"unknown command {command}")
            continue
        buffer.append(line)
        if not stripped.endswith(";"):
            continue
        sql = "\n".join(buffer)
        buffer = []
        try:
            print_result(db.execute(sql))
        except ReproError as exc:
            print(f"error: {exc}")
    print("bye")


if __name__ == "__main__":
    main()
